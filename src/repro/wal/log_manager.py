"""Local log manager with USN-style LSN assignment.

This class is the paper's Section 3.2.1 algorithm.  On every append the
log manager assigns

    ``LSN = max(page_LSN passed by the updater, Local_Max_LSN) + 1``

which guarantees (a) LSNs are strictly increasing *within this log*
across records for different pages, and (b) the LSN sequence *per page*
is strictly increasing across the whole multi-system complex — because
any system that updates a page after us sees our LSN in the page header
and is pushed above it.

``Local_Max_LSN`` additionally absorbs maxima received from other
systems (:meth:`observe_remote_max`), the Lamport-clock exchange of
Section 3.5 that keeps LSNs close together across systems so the
Commit_LSN optimization stays effective.

The log itself is a byte-faithful append-only buffer of serialized
records with an explicit stable-storage boundary; :meth:`crash`
discards the unflushed tail, exactly what a power failure does.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.config import NULL_LSN
from repro.common.lsn import LogAddress, Lsn, addresses_for
from repro.common.stats import (
    LOG_ARCHIVE_SCANS,
    LOG_BYTES_ARCHIVED,
    LOG_BYTES_WRITTEN,
    LOG_FORCES,
    LOG_FORCES_COALESCED,
    LOG_RECORDS_WRITTEN,
    StatsRegistry,
)
from repro.faults import points as fp
from repro.faults.injector import NULL_INJECTOR, NullFaultInjector
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.wal.records import LogRecord, stamp_and_encode_batch


class LogManager:
    """One system's local log (SD) or the server's single log (CS)."""

    def __init__(
        self,
        system_id: int,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
    ) -> None:
        self.system_id = system_id
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = injector if injector is not None else NULL_INJECTOR
        # Pre-resolved counter handles: the append path bumps these on
        # every record, so skipping the registry's string hashing there
        # is the cheapest real win in the whole hot lane.
        self._records_written = self.stats.handle(LOG_RECORDS_WRITTEN)
        self._bytes_written = self.stats.handle(LOG_BYTES_WRITTEN)
        self._buffer = bytearray()
        self._flushed_len = 0
        self.local_max_lsn: Lsn = NULL_LSN
        # Byte offset of the BEGIN_CHECKPOINT record of the most recent
        # *completed* checkpoint.  Models the WAL "master record" kept
        # on stable storage, so it survives :meth:`crash` — but callers
        # must only set it after forcing the checkpoint records.
        self.master_record_offset: Optional[int] = None
        # Everything before this offset has been moved to archive
        # storage (image-copy tapes in 1992 terms).  Restart recovery
        # never needs it; media recovery may, and such reads are
        # counted separately.  Offsets remain stable across archiving.
        self.archived_offset = 0

    # ------------------------------------------------------------------
    # LSN assignment (the paper's core algorithm)
    # ------------------------------------------------------------------
    def next_lsn(self, page_lsn: Lsn = NULL_LSN) -> Lsn:
        """The LSN the next append would be assigned, without appending."""
        return max(page_lsn, self.local_max_lsn) + 1

    def append(self, record: LogRecord, page_lsn: Lsn = NULL_LSN) -> LogAddress:
        """Assign an LSN to ``record`` and append it to the log.

        ``page_lsn`` is the current page_LSN of the page being updated
        (the updater "passes to the log manager the page_LSN value").
        For records not tied to a page (commit, checkpoint) the default
        NULL_LSN makes the rule degenerate to ``Local_Max_LSN + 1``.

        Returns the record's logical :class:`LogAddress`; the assigned
        LSN is stamped into ``record.lsn``.
        """
        lsn = max(page_lsn, self.local_max_lsn) + 1
        record.lsn = lsn
        record.system_id = self.system_id
        self.local_max_lsn = lsn
        addr = self._append_bytes(record.to_bytes())
        if self.tracer.enabled:
            self.tracer.emit(
                ev.LOG_APPEND,
                system=self.system_id,
                lsn=int(lsn),
                kind=record.kind.name,
                txn=record.txn_id,
                page=record.page_id,
                offset=addr.offset,
            )
        return addr

    def append_many(
        self,
        records: Sequence[LogRecord],
        page_lsns: Optional[Sequence[Lsn]] = None,
    ) -> List[LogAddress]:
        """Batch form of :meth:`append` — the WAL fast lane.

        Semantically identical to calling :meth:`append` once per
        record (same LSN assignment, same stamped fields, same trace
        events when tracing is on), but the batch serializes into the
        log buffer with a single extend and bumps each counter once,
        so large batches approach the cost of the serialization alone.

        ``page_lsns`` optionally carries one page_LSN per record (the
        value the updater would have passed to :meth:`append`); omitted
        it defaults to NULL_LSN for every record, the common shape for
        control/filler batches.
        """
        if page_lsns is not None and len(page_lsns) != len(records):
            raise ValueError(
                f"append_many: {len(records)} records but "
                f"{len(page_lsns)} page_lsns"
            )
        if not records:
            return []
        system_id = self.system_id
        parts, lsn = stamp_and_encode_batch(
            records, self.local_max_lsn, system_id, page_lsns
        )
        offset = len(self._buffer)
        offsets: List[int] = []
        note_offset = offsets.append
        for data in parts:
            note_offset(offset)
            offset += len(data)
        self.local_max_lsn = lsn
        blob = b"".join(parts)
        self._buffer += blob
        self._records_written.bump(len(records))
        self._bytes_written.bump(len(blob))
        if self.tracer.enabled:
            for record, record_offset in zip(records, offsets):
                self.tracer.emit(
                    ev.LOG_APPEND,
                    system=system_id,
                    lsn=int(record.lsn),
                    kind=record.kind.name,
                    txn=record.txn_id,
                    page=record.page_id,
                    offset=record_offset,
                )
        return addresses_for(system_id, offsets)

    def append_raw(self, data: bytes) -> LogAddress:
        """Append pre-serialized records verbatim (CS server path).

        The server "appends them, as they are, to its log file"
        (Section 3.1): LSNs inside the shipped records are untouched.
        ``Local_Max_LSN`` still absorbs the maximum seen so the server's
        own control records sort above everything it has stored.
        """
        addr = LogAddress(self.system_id, len(self._buffer))
        for _, record in LogRecord.parse_stream(data):
            if record.lsn > self.local_max_lsn:
                self.local_max_lsn = record.lsn
        self._append_bytes(data, count_records=False)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.LOG_APPEND_RAW,
                system=self.system_id,
                nbytes=len(data),
                local_max=int(self.local_max_lsn),
            )
        return addr

    def _append_bytes(self, data: bytes, count_records: bool = True) -> LogAddress:
        addr = LogAddress(self.system_id, len(self._buffer))
        self._buffer += data
        if count_records:
            self._records_written.bump()
        self._bytes_written.bump(len(data))
        return addr

    def observe_remote_max(self, remote_max_lsn: Lsn) -> None:
        """Lamport merge of another system's Local_Max_LSN (Section 3.5)."""
        before = self.local_max_lsn
        if remote_max_lsn > self.local_max_lsn:
            self.local_max_lsn = remote_max_lsn
        if self.tracer.enabled:
            self.tracer.emit(
                ev.LSN_OBSERVE,
                system=self.system_id,
                remote=int(remote_max_lsn),
                before=int(before),
                after=int(self.local_max_lsn),
            )

    # ------------------------------------------------------------------
    # stable storage boundary
    # ------------------------------------------------------------------
    @property
    def end_offset(self) -> int:
        """Current end-of-log byte offset (one past the last record)."""
        return len(self._buffer)

    @property
    def end_address(self) -> LogAddress:
        """Address one past the last record (scan end point)."""
        return LogAddress(self.system_id, len(self._buffer))

    @property
    def flushed_offset(self) -> int:
        """Bytes of log on stable storage."""
        return self._flushed_len

    def force(self, up_to: Optional[int] = None) -> None:
        """Flush the log to stable storage through byte offset ``up_to``
        (default: everything).  Counts one log-force I/O when the
        boundary actually advances — repeated forces of already-stable
        prefixes are free, as in real group-commit implementations.
        """
        target = len(self._buffer) if up_to is None else min(up_to, len(self._buffer))
        if target > self._flushed_len:
            if self.tracer.enabled:
                # Guarded span: the kwargs dict and handle are only
                # built when tracing — force is on the commit hot path.
                with self.tracer.span(
                    ev.SPAN_LOG_FORCE, system=self.system_id, up_to=target
                ):
                    self._advance_stable(target)
            else:
                self._advance_stable(target)

    def _advance_stable(self, target: int) -> None:
        """Advance the stable boundary to ``target`` (> current)."""
        if self._injector.enabled:
            # Consulted only when a real device write would happen,
            # and before the stable boundary moves: an injected
            # log-device failure leaves the log exactly as it was.
            self._injector.fire(
                fp.LOG_FORCE, system=self.system_id, up_to=target
            )
        self._flushed_len = target
        self.stats.incr(LOG_FORCES)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.LOG_FORCE, system=self.system_id, up_to=target
            )

    def force_through(self, offsets: Iterable[int]) -> int:
        """Coalesce a set of force requests into one stable write.

        Group commit / batch flush lane: each offset in ``offsets`` is
        a boundary some caller needs stable — on the slow path each
        not-yet-stable boundary would have cost its own
        :meth:`force`.  Here all pending requests are satisfied by a
        single force through the maximum boundary; every request
        beyond the first that actually needed I/O is counted as
        coalesced (``LOG_FORCES_COALESCED``).

        Returns the number of force requests coalesced away (0 when
        nothing was pending or only one request needed the write).
        """
        flushed = self._flushed_len
        pending = [offset for offset in offsets if offset > flushed]
        if not pending:
            return 0
        coalesced = len(pending) - 1
        if coalesced:
            self.stats.incr(LOG_FORCES_COALESCED, coalesced)
        self.force(up_to=max(pending))
        return coalesced

    def is_stable(self, offset_end: int) -> bool:
        """Is every byte before ``offset_end`` on stable storage?"""
        return offset_end <= self._flushed_len

    # ------------------------------------------------------------------
    # archiving (active-log truncation)
    # ------------------------------------------------------------------
    @property
    def active_bytes(self) -> int:
        """Bytes still on the active log device (not yet archived)."""
        return len(self._buffer) - self.archived_offset

    def archive_up_to(self, offset: int) -> int:
        """Move the stable prefix before ``offset`` to archive storage.

        The caller (see :func:`repro.recovery.checkpoint.archive_log`)
        must have established that restart recovery can never need the
        prefix: it lies before the last checkpoint's BEGIN record, every
        dirty page's RecAddr and every active transaction's first
        record.  Returns the bytes newly archived.
        """
        if offset > self._flushed_len:
            raise ValueError("cannot archive unforced log")
        moved = max(0, offset - self.archived_offset)
        if moved:
            self.archived_offset = offset
            self.stats.incr(LOG_BYTES_ARCHIVED, moved)
        return moved

    # ------------------------------------------------------------------
    # failure & scanning
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose the volatile tail, keeping only the flushed prefix."""
        del self._buffer[self._flushed_len:]

    def recover_local_max(self) -> Lsn:
        """Rebuild Local_Max_LSN from the log after a restart.

        A restarted system must not assign LSNs below ones it already
        wrote; scanning the stable log for the maximum reinitialises the
        Lamport clock.  (Remote maxima re-arrive via normal traffic.)
        LSNs increase along the log, so the active portion suffices; the
        archive is consulted only if the active log is empty.
        """
        maximum = NULL_LSN
        for _, record in self.scan(from_offset=self.archived_offset):
            if record.lsn > maximum:
                maximum = record.lsn
        if maximum == NULL_LSN and self.archived_offset:
            for _, record in self.scan():
                if record.lsn > maximum:
                    maximum = record.lsn
        self.local_max_lsn = maximum
        return maximum

    def scan(
        self,
        from_offset: int = 0,
        include_unflushed: bool = True,
    ) -> Iterator[Tuple[LogAddress, LogRecord]]:
        """Yield ``(address, record)`` in log order from ``from_offset``.

        Restart recovery scans the stable prefix only
        (``include_unflushed=False`` after :meth:`crash` is a no-op
        distinction, but live invariant checks use it).
        """
        end = len(self._buffer) if include_unflushed else self._flushed_len
        if from_offset < self.archived_offset:
            # The scan reaches into archived territory (media recovery
            # fetching the tapes); account for it.
            self.stats.incr(LOG_ARCHIVE_SCANS)
        data = bytes(self._buffer[:end])
        offset = from_offset
        while offset < end:
            record, offset_next = LogRecord.from_bytes(data, offset)
            yield LogAddress(self.system_id, offset), record
            offset = offset_next

    def read_record_at(self, offset: int) -> LogRecord:
        """Parse the single record starting at byte ``offset``.

        Zero-copy: the record is parsed straight out of the live log
        buffer through a short-lived memoryview instead of snapshotting
        the whole log for one record (recovery's redo pass calls this
        in a loop).
        """
        with memoryview(self._buffer) as view:
            record, _ = LogRecord.from_bytes(view, offset)
        return record

    def record_count(self) -> int:
        """Total records currently in the log (including unflushed)."""
        return sum(1 for _ in self.scan())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LogManager(system={self.system_id}, bytes={len(self._buffer)}, "
            f"flushed={self._flushed_len}, local_max_lsn={self.local_max_lsn})"
        )
