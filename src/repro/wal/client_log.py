"""Client-side log manager for the client-server architecture.

Per Section 3.1 of the paper, CS clients "have (local) log managers
which behave very much like the regular log managers, except that,
instead of writing log records to disk, they just buffer them in virtual
storage and then at various points in time ship them to the server."

The shipping contract (Section 3.3): *all* buffered log records are sent
to the server when any dirty page is sent back, or when a transaction
commits — whichever happens first.  That contract is what makes client
crash recovery possible from the server's single log alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import NULL_LSN
from repro.common.lsn import Lsn
from repro.common.stats import LOG_RECORDS_WRITTEN, StatsRegistry
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.wal.records import LogRecord, RecordKind


class ClientLogManager:
    """Virtual-storage log buffer with USN LSN assignment.

    LSN assignment is identical to :class:`~repro.wal.log_manager.
    LogManager` — the whole point of the paper is that clients can
    assign LSNs locally, without a round trip to the server, and still
    get complex-wide per-page monotonicity.
    """

    def __init__(
        self,
        client_id: int,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        self.client_id = client_id
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.local_max_lsn: Lsn = NULL_LSN
        # Records appended since the last ship, in order.
        self._pending: List[LogRecord] = []
        # Retained records of still-active transactions, for local
        # rollback after the originals have been shipped to the server.
        self._txn_records: Dict[int, List[LogRecord]] = {}

    # ------------------------------------------------------------------
    def append(self, record: LogRecord, page_lsn: Lsn = NULL_LSN) -> Lsn:
        """Assign an LSN (USN rule) and buffer the record."""
        lsn = max(page_lsn, self.local_max_lsn) + 1
        record.lsn = lsn
        record.system_id = self.client_id
        self.local_max_lsn = lsn
        self._pending.append(record)
        if record.txn_id:
            if record.kind == RecordKind.END:
                self._txn_records.pop(record.txn_id, None)
            else:
                self._txn_records.setdefault(record.txn_id, []).append(record)
        self.stats.incr(LOG_RECORDS_WRITTEN)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.LOG_APPEND,
                system=self.client_id,
                lsn=int(lsn),
                kind=record.kind.name,
                txn=record.txn_id,
                page=record.page_id,
                offset=None,
            )
        return lsn

    def observe_remote_max(self, remote_max_lsn: Lsn) -> None:
        """Lamport merge, typically from server-piggybacked maxima."""
        before = self.local_max_lsn
        if remote_max_lsn > self.local_max_lsn:
            self.local_max_lsn = remote_max_lsn
        if self.tracer.enabled:
            self.tracer.emit(
                ev.LSN_OBSERVE,
                system=self.client_id,
                remote=int(remote_max_lsn),
                before=int(before),
                after=int(self.local_max_lsn),
            )

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        return len(self._pending)

    def ship(self) -> bytes:
        """Serialize and drain every buffered record, in append order.

        Returns the byte stream the server appends verbatim to its log.
        An empty result means nothing needed shipping.
        """
        if not self._pending:
            return b""
        data = b"".join(record.to_bytes() for record in self._pending)
        self._pending.clear()
        return data

    # ------------------------------------------------------------------
    # local rollback support
    # ------------------------------------------------------------------
    def records_of_txn(self, txn_id: int) -> List[LogRecord]:
        """This client's retained records for an active transaction,
        oldest first (shipped or not)."""
        return list(self._txn_records.get(txn_id, []))

    def forget_txn(self, txn_id: int) -> None:
        """Drop retained records once the transaction has ended."""
        self._txn_records.pop(txn_id, None)

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Client failure: all virtual-storage state evaporates."""
        self._pending.clear()
        self._txn_records.clear()
        self.local_max_lsn = NULL_LSN

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClientLogManager(client={self.client_id}, "
            f"pending={len(self._pending)}, local_max_lsn={self.local_max_lsn})"
        )
