"""Merging local logs for media recovery.

Under the paper's USN scheme every local log is internally sorted by
LSN (the assignment rule makes LSNs strictly increasing within a
system, *across records for different pages*).  Media recovery can
therefore k-way merge the local logs **comparing only the LSN field**
(Section 3.2.2).  Ties between records from different logs are allowed:
equal LSNs can only belong to different pages — per-page monotonicity
across the complex guarantees it — so the merge may emit them in either
order.

Lomet's baseline scheme gives each *page* a private LSN sequence, so a
local log is not sorted by LSN at all; the merge "requires that both
the page number field and the LSN field of the log records be compared"
(Section 4.2).  :func:`lomet_merge` implements that: a per-page k-way
merge keyed by ``(page_id, LSN)``.

Both functions count key comparisons into a
:class:`~repro.common.stats.StatsRegistry` so experiment E3 can report
the cost difference.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.lsn import LogAddress
from repro.common.stats import MERGE_COMPARISONS, StatsRegistry
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


class _LsnKey:
    """Heap key comparing LSNs only, counting every comparison."""

    __slots__ = ("lsn", "stats")

    def __init__(self, lsn: int, stats: StatsRegistry) -> None:
        self.lsn = lsn
        self.stats = stats

    def __lt__(self, other: "_LsnKey") -> bool:
        self.stats.incr(MERGE_COMPARISONS)
        return self.lsn < other.lsn


class _PageLsnKey:
    """Heap key comparing (page_id, LSN) — Lomet's merge key.

    Each field comparison is counted separately: the paper's complaint
    is precisely that two fields must be examined.
    """

    __slots__ = ("page_id", "lsn", "stats")

    def __init__(self, page_id: int, lsn: int, stats: StatsRegistry) -> None:
        self.page_id = page_id
        self.lsn = lsn
        self.stats = stats

    def __lt__(self, other: "_PageLsnKey") -> bool:
        self.stats.incr(MERGE_COMPARISONS)
        if self.page_id != other.page_id:
            return self.page_id < other.page_id
        self.stats.incr(MERGE_COMPARISONS)
        return self.lsn < other.lsn


MergedEntry = Tuple[LogAddress, LogRecord]


def _log_streams(
    logs: Iterable[LogManager],
    from_offsets: Optional[Dict[int, int]] = None,
    stable_only: bool = False,
) -> List[Iterator[MergedEntry]]:
    streams: List[Iterator[MergedEntry]] = []
    for log in logs:
        start = 0
        if from_offsets is not None:
            start = from_offsets.get(log.system_id, 0)
        streams.append(
            log.scan(from_offset=start, include_unflushed=not stable_only)
        )
    return streams


def merge_local_logs(
    logs: Iterable[LogManager],
    stats: Optional[StatsRegistry] = None,
    from_offsets: Optional[Dict[int, int]] = None,
    stable_only: bool = False,
) -> Iterator[MergedEntry]:
    """k-way merge of USN local logs by LSN alone.

    Yields ``(address, record)`` in globally non-decreasing LSN order.
    ``from_offsets`` optionally maps system_id -> starting byte offset
    (e.g. the image-copy boundary) to shorten the scan.  With
    ``stable_only`` each scan stops at its log's flushed boundary —
    the log shipper's mode: only forced records may leave the primary,
    otherwise a standby could hold records the primary loses in a
    crash.
    """
    stats = stats if stats is not None else StatsRegistry()
    heap: List[Tuple[_LsnKey, int, MergedEntry, Iterator[MergedEntry]]] = []
    streams = _log_streams(logs, from_offsets, stable_only=stable_only)
    for tiebreak, stream in enumerate(streams):
        entry = next(stream, None)
        if entry is not None:
            heapq.heappush(
                heap, (_LsnKey(entry[1].lsn, stats), tiebreak, entry, stream)
            )
    while heap:
        _, tiebreak, entry, stream = heapq.heappop(heap)
        yield entry
        nxt = next(stream, None)
        if nxt is not None:
            heapq.heappush(
                heap, (_LsnKey(nxt[1].lsn, stats), tiebreak, nxt, stream)
            )


def lomet_merge(
    logs: Iterable[LogManager],
    stats: Optional[StatsRegistry] = None,
    from_offsets: Optional[Dict[int, int]] = None,
) -> Iterator[MergedEntry]:
    """Merge for the Lomet baseline: keyed by ``(page_id, LSN)``.

    Local logs are *not* LSN-sorted under Lomet's scheme (each page has
    its own 1,2,3,... sequence), so a streaming heap over the raw logs
    would be incorrect.  Instead the merge must first demultiplex each
    log into per-page runs (which are individually ordered) and then
    k-way merge the runs.  The demultiplexing pass is part of what makes
    the scheme costly; we charge one comparison per record routed.
    """
    stats = stats if stats is not None else StatsRegistry()
    runs: Dict[int, List[MergedEntry]] = {}
    for stream in _log_streams(logs, from_offsets):
        for entry in stream:
            page_id = entry[1].page_id
            stats.incr(MERGE_COMPARISONS)  # routing by page number
            runs.setdefault(page_id, []).append(entry)
    heap: List[Tuple[_PageLsnKey, int, int]] = []
    cursors: List[List[MergedEntry]] = []
    # Each per-(log, page) run stays internally ordered; rebuild runs
    # per (page, source) so the heap only ever compares run heads.
    per_source_runs: List[List[MergedEntry]] = []
    for page_id in sorted(runs):
        by_source: Dict[int, List[MergedEntry]] = {}
        for entry in runs[page_id]:
            by_source.setdefault(entry[0].system_id, []).append(entry)
        per_source_runs.extend(by_source.values())
    for idx, run in enumerate(per_source_runs):
        cursors.append(run)
        head = run[0][1]
        heapq.heappush(heap, (_PageLsnKey(head.page_id, head.lsn, stats), idx, 0))
    while heap:
        _, idx, pos = heapq.heappop(heap)
        entry = cursors[idx][pos]
        yield entry
        if pos + 1 < len(cursors[idx]):
            nxt = cursors[idx][pos + 1][1]
            heapq.heappush(
                heap, (_PageLsnKey(nxt.page_id, nxt.lsn, stats), idx, pos + 1)
            )


def merged_records_for_page(
    logs: Iterable[LogManager],
    page_id: int,
    stats: Optional[StatsRegistry] = None,
    from_offsets: Optional[Dict[int, int]] = None,
) -> List[MergedEntry]:
    """All records describing ``page_id`` in complex-wide LSN order.

    This is the media-recovery input for one page: the filtered merged
    stream.  Per-page monotonicity (invariant I1) makes the result's
    LSNs strictly increasing.
    """
    return [
        entry
        for entry in merge_local_logs(logs, stats=stats, from_offsets=from_offsets)
        if entry[1].page_id == page_id
    ]
