"""Binary log record format.

Every record serializes to a 48-byte packed header followed by three
variable-length payloads (redo, undo, extra).  Fields:

==============  =====  ====================================================
field           bytes  meaning
==============  =====  ====================================================
lsn             8      update sequence number assigned by the log manager
prev_lsn        8      LSN of this transaction's previous record (0 = none)
txn_id          8      owning transaction
undo_next_lsn   8      CLRs only: next record of the txn to undo (0 = done)
page_id         4      page the record describes (0xFFFFFFFF = none)
system_id       2      writer system / client id (Section 3.1: client log
                       records carry the client's identity)
slot            2      record slot within the page (0xFFFF = none)
redo_len        2
undo_len        2
extra_len       2
kind            1      :class:`RecordKind`
padding         1
==============  =====  ====================================================

Update payloads are *physiological*: an operation byte
(:class:`PageOp`) plus operand bytes, applied to a named slot of a named
page.  Lomet-baseline records reuse this format, carrying the before-
state identifier (BSI) in the ``extra`` field.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.common.lsn import Lsn

_HEADER = struct.Struct("<QQQQIHHHHHBx")
HEADER_SIZE = _HEADER.size
assert HEADER_SIZE == 48

#: Log bytes can be parsed out of an owned ``bytes`` object or a
#: zero-copy ``memoryview`` over someone else's buffer (the log
#: manager's bytearray, a network frame).  The header path never
#: materializes intermediate ``bytes`` either way.
LogBuffer = Union[bytes, bytearray, memoryview]

NO_PAGE = 0xFFFFFFFF
NO_SLOT = 0xFFFF


class RecordKind(enum.IntEnum):
    """Discriminates log record roles during the recovery passes."""

    UPDATE = 1            # redo+undo page change
    CLR = 2               # compensation record (redo-only)
    COMMIT = 3            # transaction committed (forces the log)
    ABORT = 4             # rollback started
    END = 5               # transaction fully finished (after commit/undo)
    BEGIN_CHECKPOINT = 6
    END_CHECKPOINT = 7    # carries serialized DPT + transaction table
    FORMAT_PAGE = 8       # page (re)allocation format record (redo-only)
    SMP_UPDATE = 9        # space map page bit flip (redo+undo)
    DUMMY = 10            # filler for log-production-rate experiments


class PageOp(enum.IntEnum):
    """Physiological operation encoded at the head of redo/undo data."""

    INSERT = 1      # operand: record payload, inserted at the named slot
    DELETE = 2      # operand: empty
    SET = 3         # operand: full new/old record payload
    FORMAT = 4      # operand: u8 page type
    SMP_SET = 5        # operand: SpaceMap.encode_entry_update payload
    NOOP = 6           # operand: ignored
    SMP_SET_RANGE = 7  # operand: SpaceMap.encode_range_update payload
                       # (mass delete logs one record per SMP page)


def encode_op(op: PageOp, data: bytes = b"") -> bytes:
    """Serialize an operation payload."""
    return bytes([int(op)]) + data


def decode_op(payload: bytes) -> Tuple[PageOp, bytes]:
    """Inverse of :func:`encode_op`."""
    if not payload:
        raise ValueError("empty operation payload")
    return PageOp(payload[0]), payload[1:]


@dataclass
class LogRecord:
    """One log record; mutable because the log manager stamps the LSN."""

    kind: RecordKind
    txn_id: int = 0
    system_id: int = 0
    page_id: int = NO_PAGE
    slot: int = NO_SLOT
    lsn: Lsn = 0
    prev_lsn: Lsn = 0
    undo_next_lsn: Lsn = 0
    redo: bytes = b""
    undo: bytes = b""
    extra: bytes = b""

    # ------------------------------------------------------------------
    # encoded-bytes cache
    # ------------------------------------------------------------------
    # ``to_bytes`` caches its result under the non-field ``__dict__``
    # key ``_encoded``; any later field assignment invalidates it.  The
    # cache is written with a direct ``__dict__`` store so the
    # invalidation hook below never sees it.
    def __setattr__(self, name: str, value: object) -> None:
        d = self.__dict__
        d[name] = value
        if "_encoded" in d:
            del d["_encoded"]

    # ------------------------------------------------------------------
    def is_page_oriented(self) -> bool:
        """Does this record describe a change to a specific page?"""
        return self.page_id != NO_PAGE

    def is_undoable(self) -> bool:
        """UPDATE/SMP_UPDATE records are undone during rollback; CLRs,
        format records and control records are not."""
        return self.kind in (RecordKind.UPDATE, RecordKind.SMP_UPDATE)

    def serialized_size(self) -> int:
        """Encoded length, computed from field lengths (no packing)."""
        return HEADER_SIZE + len(self.redo) + len(self.undo) + len(self.extra)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        cached: Optional[bytes] = self.__dict__.get("_encoded")
        if cached is not None:
            return cached
        data = _HEADER.pack(
            self.lsn, self.prev_lsn, self.txn_id, self.undo_next_lsn,
            self.page_id, self.system_id, self.slot,
            len(self.redo), len(self.undo), len(self.extra), int(self.kind),
        ) + self.redo + self.undo + self.extra
        self.__dict__["_encoded"] = data
        return data

    @classmethod
    def from_bytes(
        cls, data: LogBuffer, offset: int = 0
    ) -> Tuple["LogRecord", int]:
        """Parse one record at ``offset``; returns ``(record, next_offset)``.

        The header is unpacked in place (``unpack_from``), so passing a
        ``memoryview`` parses without materializing any intermediate
        ``bytes``; only the (possibly empty) payloads are copied out.
        """
        (lsn, prev_lsn, txn_id, undo_next_lsn, page_id, system_id, slot,
         redo_len, undo_len, extra_len, kind) = _HEADER.unpack_from(data, offset)
        pos = offset + HEADER_SIZE
        redo = bytes(data[pos:pos + redo_len]) if redo_len else b""
        pos += redo_len
        undo = bytes(data[pos:pos + undo_len]) if undo_len else b""
        pos += undo_len
        extra = bytes(data[pos:pos + extra_len]) if extra_len else b""
        pos += extra_len
        # Construct without __init__: recovery scans parse records by
        # the thousand, and routing eleven field assignments through
        # the Python-level invalidation hook above would tax exactly
        # the paths this parser exists to keep fast.  A record built
        # here has no cached encoding, so the bulk-update is safe.
        record = cls.__new__(cls)
        record.__dict__.update(
            kind=RecordKind(kind), txn_id=txn_id, system_id=system_id,
            page_id=page_id, slot=slot, lsn=lsn, prev_lsn=prev_lsn,
            undo_next_lsn=undo_next_lsn, redo=redo, undo=undo, extra=extra,
        )
        return record, pos

    @staticmethod
    def parse_stream(data: LogBuffer) -> Iterator[Tuple[int, "LogRecord"]]:
        """Yield ``(offset, record)`` for every record in ``data``.

        ``data`` may be ``bytes`` or a ``memoryview``; either way a
        single view is threaded through every :meth:`from_bytes` call,
        so per-record parsing never slices the underlying buffer into
        intermediate ``bytes`` objects for the header path.
        """
        view = data if isinstance(data, memoryview) else memoryview(data)
        offset = 0
        end = len(view)
        while offset < end:
            record, offset_next = LogRecord.from_bytes(view, offset)
            yield offset, record
            offset = offset_next


def stamp_and_encode(record: LogRecord, lsn: Lsn, system_id: int) -> bytes:
    """Hot-lane helper: assign ``lsn``/``system_id`` and serialize.

    Semantically identical to two attribute assignments followed by
    :meth:`LogRecord.to_bytes`, collapsed into one call so the batched
    append path (:meth:`repro.wal.log_manager.LogManager.append_many`)
    pays one function call per record instead of three.  The encoded
    bytes are cached on the record exactly as ``to_bytes`` would.
    """
    d = record.__dict__
    d["lsn"] = lsn
    d["system_id"] = system_id
    redo = record.redo
    undo = record.undo
    extra = record.extra
    data = _HEADER.pack(
        lsn, record.prev_lsn, record.txn_id, record.undo_next_lsn,
        record.page_id, system_id, record.slot,
        len(redo), len(undo), len(extra), record.kind,
    ) + redo + undo + extra
    d["_encoded"] = data
    return data


def stamp_and_encode_batch(
    records: Sequence[LogRecord],
    lsn: Lsn,
    system_id: int,
    page_lsns: Optional[Sequence[Lsn]] = None,
) -> Tuple[List[bytes], Lsn]:
    """Stamp and serialize a whole batch; returns ``(parts, last_lsn)``.

    The innermost loop of :meth:`LogManager.append_many
    <repro.wal.log_manager.LogManager.append_many>`, kept here next to
    ``_HEADER`` so a 64-record batch pays zero per-record function
    calls: LSN assignment follows the USN rule
    (``max(page_lsn, running_lsn) + 1``, degenerating to ``+1`` when
    ``page_lsns`` is omitted), fields are stamped through ``__dict__``
    (skipping the invalidation hook — the fresh encoding is installed
    in the same breath), and each record's encoded bytes are cached
    exactly as :meth:`LogRecord.to_bytes` would.
    """
    pack = _HEADER.pack
    parts: List[bytes] = []
    note_part = parts.append
    if page_lsns is None:
        for record in records:
            lsn += 1
            d = record.__dict__
            d["lsn"] = lsn
            d["system_id"] = system_id
            redo = d["redo"]
            undo = d["undo"]
            extra = d["extra"]
            data = pack(
                lsn, d["prev_lsn"], d["txn_id"], d["undo_next_lsn"],
                d["page_id"], system_id, d["slot"],
                len(redo), len(undo), len(extra), d["kind"],
            ) + redo + undo + extra
            d["_encoded"] = data
            note_part(data)
    else:
        for record, page_lsn in zip(records, page_lsns):
            if page_lsn > lsn:
                lsn = page_lsn
            lsn += 1
            d = record.__dict__
            d["lsn"] = lsn
            d["system_id"] = system_id
            redo = d["redo"]
            undo = d["undo"]
            extra = d["extra"]
            data = pack(
                lsn, d["prev_lsn"], d["txn_id"], d["undo_next_lsn"],
                d["page_id"], system_id, d["slot"],
                len(redo), len(undo), len(extra), d["kind"],
            ) + redo + undo + extra
            d["_encoded"] = data
            note_part(data)
    return parts, lsn


# ----------------------------------------------------------------------
# checkpoint payloads
# ----------------------------------------------------------------------
_CKPT_HDR = struct.Struct("<HH")
_DPT_ENTRY = struct.Struct("<IQQ")     # page_id, rec_lsn, rec_addr_offset
_TT_ENTRY = struct.Struct("<QQB")      # txn_id, last_lsn, state


@dataclass
class CheckpointData:
    """Serializable content of an END_CHECKPOINT record.

    ``dirty_pages`` maps page_id -> (RecLSN, RecAddr offset): the LSN of
    the first update that dirtied the page plus the local-log byte
    offset of that record (the paper's RecAddr, Section 3.2.2, which
    bounds where the restart redo scan must begin).

    ``transactions`` maps txn_id -> (last_lsn, state) for in-flight
    transactions, where ``state`` is 0 = active, 1 = committing.
    """

    dirty_pages: Dict[int, Tuple[Lsn, int]] = field(default_factory=dict)
    transactions: Dict[int, Tuple[Lsn, int]] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        parts: List[bytes] = [
            _CKPT_HDR.pack(len(self.dirty_pages), len(self.transactions))
        ]
        for page_id in sorted(self.dirty_pages):
            rec_lsn, rec_addr = self.dirty_pages[page_id]
            parts.append(_DPT_ENTRY.pack(page_id, rec_lsn, rec_addr))
        for txn_id in sorted(self.transactions):
            last_lsn, state = self.transactions[txn_id]
            parts.append(_TT_ENTRY.pack(txn_id, last_lsn, state))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CheckpointData":
        n_dpt, n_tt = _CKPT_HDR.unpack_from(data, 0)
        pos = _CKPT_HDR.size
        dirty: Dict[int, Tuple[Lsn, int]] = {}
        for _ in range(n_dpt):
            page_id, rec_lsn, rec_addr = _DPT_ENTRY.unpack_from(data, pos)
            dirty[page_id] = (rec_lsn, rec_addr)
            pos += _DPT_ENTRY.size
        txns: Dict[int, Tuple[Lsn, int]] = {}
        for _ in range(n_tt):
            txn_id, last_lsn, state = _TT_ENTRY.unpack_from(data, pos)
            txns[txn_id] = (last_lsn, state)
            pos += _TT_ENTRY.size
        return cls(dirty_pages=dirty, transactions=txns)


# Convenience constructors ------------------------------------------------

def make_update(
    txn_id: int,
    system_id: int,
    page_id: int,
    slot: int,
    redo: bytes,
    undo: bytes,
    prev_lsn: Lsn = 0,
) -> LogRecord:
    """An ordinary redo/undo page update record."""
    return LogRecord(
        kind=RecordKind.UPDATE, txn_id=txn_id, system_id=system_id,
        page_id=page_id, slot=slot, redo=redo, undo=undo, prev_lsn=prev_lsn,
    )


def make_clr(
    txn_id: int,
    system_id: int,
    page_id: int,
    slot: int,
    redo: bytes,
    undo_next_lsn: Lsn,
    prev_lsn: Lsn = 0,
) -> LogRecord:
    """A compensation log record: redo-only, never undone."""
    return LogRecord(
        kind=RecordKind.CLR, txn_id=txn_id, system_id=system_id,
        page_id=page_id, slot=slot, redo=redo,
        undo_next_lsn=undo_next_lsn, prev_lsn=prev_lsn,
    )


def make_format(
    txn_id: int,
    system_id: int,
    page_id: int,
    page_type: int,
    prev_lsn: Lsn = 0,
) -> LogRecord:
    """A page-format record, written when (re)allocating a page.

    Redo-only: formatting wipes the page, so there is nothing to undo at
    the page level (deallocation of the page is what gets undone, via
    the covering SMP_UPDATE record).
    """
    return LogRecord(
        kind=RecordKind.FORMAT_PAGE, txn_id=txn_id, system_id=system_id,
        page_id=page_id, slot=NO_SLOT,
        redo=encode_op(PageOp.FORMAT, bytes([page_type])), prev_lsn=prev_lsn,
    )
