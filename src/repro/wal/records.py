"""Binary log record format.

Every record serializes to a 48-byte packed header followed by three
variable-length payloads (redo, undo, extra).  Fields:

==============  =====  ====================================================
field           bytes  meaning
==============  =====  ====================================================
lsn             8      update sequence number assigned by the log manager
prev_lsn        8      LSN of this transaction's previous record (0 = none)
txn_id          8      owning transaction
undo_next_lsn   8      CLRs only: next record of the txn to undo (0 = done)
page_id         4      page the record describes (0xFFFFFFFF = none)
system_id       2      writer system / client id (Section 3.1: client log
                       records carry the client's identity)
slot            2      record slot within the page (0xFFFF = none)
redo_len        2
undo_len        2
extra_len       2
kind            1      :class:`RecordKind`
padding         1
==============  =====  ====================================================

Update payloads are *physiological*: an operation byte
(:class:`PageOp`) plus operand bytes, applied to a named slot of a named
page.  Lomet-baseline records reuse this format, carrying the before-
state identifier (BSI) in the ``extra`` field.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.common.lsn import Lsn

_HEADER = struct.Struct("<QQQQIHHHHHBx")
HEADER_SIZE = _HEADER.size
assert HEADER_SIZE == 48

NO_PAGE = 0xFFFFFFFF
NO_SLOT = 0xFFFF


class RecordKind(enum.IntEnum):
    """Discriminates log record roles during the recovery passes."""

    UPDATE = 1            # redo+undo page change
    CLR = 2               # compensation record (redo-only)
    COMMIT = 3            # transaction committed (forces the log)
    ABORT = 4             # rollback started
    END = 5               # transaction fully finished (after commit/undo)
    BEGIN_CHECKPOINT = 6
    END_CHECKPOINT = 7    # carries serialized DPT + transaction table
    FORMAT_PAGE = 8       # page (re)allocation format record (redo-only)
    SMP_UPDATE = 9        # space map page bit flip (redo+undo)
    DUMMY = 10            # filler for log-production-rate experiments


class PageOp(enum.IntEnum):
    """Physiological operation encoded at the head of redo/undo data."""

    INSERT = 1      # operand: record payload, inserted at the named slot
    DELETE = 2      # operand: empty
    SET = 3         # operand: full new/old record payload
    FORMAT = 4      # operand: u8 page type
    SMP_SET = 5        # operand: SpaceMap.encode_entry_update payload
    NOOP = 6           # operand: ignored
    SMP_SET_RANGE = 7  # operand: SpaceMap.encode_range_update payload
                       # (mass delete logs one record per SMP page)


def encode_op(op: PageOp, data: bytes = b"") -> bytes:
    """Serialize an operation payload."""
    return bytes([int(op)]) + data


def decode_op(payload: bytes) -> Tuple[PageOp, bytes]:
    """Inverse of :func:`encode_op`."""
    if not payload:
        raise ValueError("empty operation payload")
    return PageOp(payload[0]), payload[1:]


@dataclass
class LogRecord:
    """One log record; mutable because the log manager stamps the LSN."""

    kind: RecordKind
    txn_id: int = 0
    system_id: int = 0
    page_id: int = NO_PAGE
    slot: int = NO_SLOT
    lsn: Lsn = 0
    prev_lsn: Lsn = 0
    undo_next_lsn: Lsn = 0
    redo: bytes = b""
    undo: bytes = b""
    extra: bytes = b""

    # ------------------------------------------------------------------
    def is_page_oriented(self) -> bool:
        """Does this record describe a change to a specific page?"""
        return self.page_id != NO_PAGE

    def is_undoable(self) -> bool:
        """UPDATE/SMP_UPDATE records are undone during rollback; CLRs,
        format records and control records are not."""
        return self.kind in (RecordKind.UPDATE, RecordKind.SMP_UPDATE)

    def serialized_size(self) -> int:
        return HEADER_SIZE + len(self.redo) + len(self.undo) + len(self.extra)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        header = _HEADER.pack(
            self.lsn, self.prev_lsn, self.txn_id, self.undo_next_lsn,
            self.page_id, self.system_id, self.slot,
            len(self.redo), len(self.undo), len(self.extra), int(self.kind),
        )
        return header + self.redo + self.undo + self.extra

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> Tuple["LogRecord", int]:
        """Parse one record at ``offset``; returns ``(record, next_offset)``."""
        (lsn, prev_lsn, txn_id, undo_next_lsn, page_id, system_id, slot,
         redo_len, undo_len, extra_len, kind) = _HEADER.unpack_from(data, offset)
        pos = offset + HEADER_SIZE
        redo = bytes(data[pos:pos + redo_len])
        pos += redo_len
        undo = bytes(data[pos:pos + undo_len])
        pos += undo_len
        extra = bytes(data[pos:pos + extra_len])
        pos += extra_len
        record = cls(
            kind=RecordKind(kind), txn_id=txn_id, system_id=system_id,
            page_id=page_id, slot=slot, lsn=lsn, prev_lsn=prev_lsn,
            undo_next_lsn=undo_next_lsn, redo=redo, undo=undo, extra=extra,
        )
        return record, pos

    @staticmethod
    def parse_stream(data: bytes) -> Iterator[Tuple[int, "LogRecord"]]:
        """Yield ``(offset, record)`` for every record in ``data``."""
        offset = 0
        end = len(data)
        while offset < end:
            record, offset_next = LogRecord.from_bytes(data, offset)
            yield offset, record
            offset = offset_next


# ----------------------------------------------------------------------
# checkpoint payloads
# ----------------------------------------------------------------------
_CKPT_HDR = struct.Struct("<HH")
_DPT_ENTRY = struct.Struct("<IQQ")     # page_id, rec_lsn, rec_addr_offset
_TT_ENTRY = struct.Struct("<QQB")      # txn_id, last_lsn, state


@dataclass
class CheckpointData:
    """Serializable content of an END_CHECKPOINT record.

    ``dirty_pages`` maps page_id -> (RecLSN, RecAddr offset): the LSN of
    the first update that dirtied the page plus the local-log byte
    offset of that record (the paper's RecAddr, Section 3.2.2, which
    bounds where the restart redo scan must begin).

    ``transactions`` maps txn_id -> (last_lsn, state) for in-flight
    transactions, where ``state`` is 0 = active, 1 = committing.
    """

    dirty_pages: Dict[int, Tuple[Lsn, int]] = field(default_factory=dict)
    transactions: Dict[int, Tuple[Lsn, int]] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        parts: List[bytes] = [
            _CKPT_HDR.pack(len(self.dirty_pages), len(self.transactions))
        ]
        for page_id in sorted(self.dirty_pages):
            rec_lsn, rec_addr = self.dirty_pages[page_id]
            parts.append(_DPT_ENTRY.pack(page_id, rec_lsn, rec_addr))
        for txn_id in sorted(self.transactions):
            last_lsn, state = self.transactions[txn_id]
            parts.append(_TT_ENTRY.pack(txn_id, last_lsn, state))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CheckpointData":
        n_dpt, n_tt = _CKPT_HDR.unpack_from(data, 0)
        pos = _CKPT_HDR.size
        dirty: Dict[int, Tuple[Lsn, int]] = {}
        for _ in range(n_dpt):
            page_id, rec_lsn, rec_addr = _DPT_ENTRY.unpack_from(data, pos)
            dirty[page_id] = (rec_lsn, rec_addr)
            pos += _DPT_ENTRY.size
        txns: Dict[int, Tuple[Lsn, int]] = {}
        for _ in range(n_tt):
            txn_id, last_lsn, state = _TT_ENTRY.unpack_from(data, pos)
            txns[txn_id] = (last_lsn, state)
            pos += _TT_ENTRY.size
        return cls(dirty_pages=dirty, transactions=txns)


# Convenience constructors ------------------------------------------------

def make_update(
    txn_id: int,
    system_id: int,
    page_id: int,
    slot: int,
    redo: bytes,
    undo: bytes,
    prev_lsn: Lsn = 0,
) -> LogRecord:
    """An ordinary redo/undo page update record."""
    return LogRecord(
        kind=RecordKind.UPDATE, txn_id=txn_id, system_id=system_id,
        page_id=page_id, slot=slot, redo=redo, undo=undo, prev_lsn=prev_lsn,
    )


def make_clr(
    txn_id: int,
    system_id: int,
    page_id: int,
    slot: int,
    redo: bytes,
    undo_next_lsn: Lsn,
    prev_lsn: Lsn = 0,
) -> LogRecord:
    """A compensation log record: redo-only, never undone."""
    return LogRecord(
        kind=RecordKind.CLR, txn_id=txn_id, system_id=system_id,
        page_id=page_id, slot=slot, redo=redo,
        undo_next_lsn=undo_next_lsn, prev_lsn=prev_lsn,
    )


def make_format(
    txn_id: int,
    system_id: int,
    page_id: int,
    page_type: int,
    prev_lsn: Lsn = 0,
) -> LogRecord:
    """A page-format record, written when (re)allocating a page.

    Redo-only: formatting wipes the page, so there is nothing to undo at
    the page level (deallocation of the page is what gets undone, via
    the covering SMP_UPDATE record).
    """
    return LogRecord(
        kind=RecordKind.FORMAT_PAGE, txn_id=txn_id, system_id=system_id,
        page_id=page_id, slot=NO_SLOT,
        redo=encode_op(PageOp.FORMAT, bytes([page_type])), prev_lsn=prev_lsn,
    )
