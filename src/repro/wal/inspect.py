"""Human-readable log inspection.

Debugging multi-system recovery means reading logs; this module renders
a local log (or the CS server's interleaved log) as a table, decodes
operation payloads, and summarises per-transaction / per-page activity.
Used by developers and a handful of tests; never by recovery itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.wal.log_manager import LogManager
from repro.wal.records import (
    CheckpointData,
    LogRecord,
    NO_PAGE,
    PageOp,
    RecordKind,
    decode_op,
)

_KIND_ABBREV = {
    RecordKind.UPDATE: "UPD",
    RecordKind.CLR: "CLR",
    RecordKind.COMMIT: "CMT",
    RecordKind.ABORT: "ABT",
    RecordKind.END: "END",
    RecordKind.BEGIN_CHECKPOINT: "BCK",
    RecordKind.END_CHECKPOINT: "ECK",
    RecordKind.FORMAT_PAGE: "FMT",
    RecordKind.SMP_UPDATE: "SMP",
    RecordKind.DUMMY: "DMY",
}


def describe_op(payload: bytes) -> str:
    """Render an operation payload compactly."""
    if not payload:
        return "-"
    op, data = decode_op(payload)
    if op is PageOp.SET or op is PageOp.INSERT:
        preview = data[:12]
        suffix = "..." if len(data) > 12 else ""
        return f"{op.name}({preview!r}{suffix})"
    if op is PageOp.FORMAT:
        return f"FORMAT(type={data[0]})"
    return op.name


def describe_record(offset: int, record: LogRecord) -> str:
    """One line per record: offset, LSN, kind, txn, page/slot, ops."""
    kind = _KIND_ABBREV.get(record.kind, str(record.kind))
    page = "" if record.page_id == NO_PAGE else \
        f" p{record.page_id}.{record.slot}"
    txn = f" t{record.txn_id}" if record.txn_id else ""
    parts = [f"@{offset:<7} lsn={record.lsn:<6} {kind}{txn}{page}"]
    if record.redo:
        parts.append(f"redo={describe_op(record.redo)}")
    if record.undo:
        parts.append(f"undo={describe_op(record.undo)}")
    if record.kind == RecordKind.CLR:
        parts.append(f"undo_next={record.undo_next_lsn}")
    if record.kind == RecordKind.END_CHECKPOINT and record.extra:
        data = CheckpointData.from_bytes(record.extra)
        parts.append(
            f"dpt={len(data.dirty_pages)} txns={len(data.transactions)}"
        )
    return " ".join(parts)


def dump_log(log: LogManager, from_offset: int = 0,
             limit: Optional[int] = None) -> str:
    """The whole log (or a slice) as a readable multi-line string."""
    lines = [
        f"log of system {log.system_id}: {log.end_offset} bytes, "
        f"{log.flushed_offset} flushed, archived below "
        f"{log.archived_offset}, Local_Max_LSN={log.local_max_lsn}"
    ]
    for i, (addr, record) in enumerate(log.scan(from_offset=from_offset)):
        if limit is not None and i >= limit:
            lines.append(f"... (truncated at {limit} records)")
            break
        lines.append(describe_record(addr.offset, record))
    return "\n".join(lines)


@dataclass
class LogSummary:
    """Aggregate view of one log's content."""

    records: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    transactions: Dict[int, int] = field(default_factory=dict)
    pages: Dict[int, int] = field(default_factory=dict)
    first_lsn: int = 0
    last_lsn: int = 0

    def render(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind.items()))
        return (
            f"{self.records} records (LSN {self.first_lsn}..{self.last_lsn}); "
            f"{len(self.transactions)} txns over {len(self.pages)} pages; "
            f"{kinds}"
        )


def summarize_log(log: LogManager) -> LogSummary:
    """Counts per kind / transaction / page, plus the LSN span."""
    summary = LogSummary()
    for _, record in log.scan():
        summary.records += 1
        abbrev = _KIND_ABBREV.get(record.kind, str(record.kind))
        summary.by_kind[abbrev] = summary.by_kind.get(abbrev, 0) + 1
        if record.txn_id:
            summary.transactions[record.txn_id] = \
                summary.transactions.get(record.txn_id, 0) + 1
        if record.page_id != NO_PAGE:
            summary.pages[record.page_id] = \
                summary.pages.get(record.page_id, 0) + 1
        if record.lsn:
            if not summary.first_lsn:
                summary.first_lsn = record.lsn
            summary.last_lsn = max(summary.last_lsn, record.lsn)
    return summary


def transaction_history(log: LogManager, txn_id: int) -> List[str]:
    """Every record of one transaction, rendered in log order."""
    return [
        describe_record(addr.offset, record)
        for addr, record in log.scan()
        if record.txn_id == txn_id
    ]


def page_history(log: LogManager, page_id: int) -> List[str]:
    """Every record describing one page, rendered in log order."""
    return [
        describe_record(addr.offset, record)
        for addr, record in log.scan()
        if record.page_id == page_id
    ]
