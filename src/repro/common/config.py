"""Fixed layout constants for the byte-level storage and log engines.

The paper reasons about page_LSN fields that live in a page header on
disk; we therefore commit to a concrete on-disk layout so that the
reproduction exercises real serialization, not an abstraction of it.
"""

# Size of a database page in bytes.  4 KiB matches DB2-era practice and
# keeps simulated disks small enough for laptop-scale experiments.
PAGE_SIZE = 4096

# Page header layout (struct format in repro.storage.page):
#   page_id      : u32
#   page_lsn     : u64   <- the field this whole paper is about
#   page_type    : u8
#   slot_count   : u16
#   free_offset  : u16
#   checksum     : u32
PAGE_HEADER_SIZE = 24

# Usable payload bytes per page.
PAGE_DATA_SIZE = PAGE_SIZE - PAGE_HEADER_SIZE

# LSNs are 8-byte unsigned integers.  The paper discusses 6- vs 8-byte
# LSNs when sizing Lomet's space-map overhead; 8 bytes is our native
# width and 6 bytes is modelled in the E4 space-overhead experiment.
LSN_SIZE = 8

# LSN value meaning "no log record" (pages start life with this).
NULL_LSN = 0

# Default number of frames in a buffer pool.
DEFAULT_BUFFER_POOL_PAGES = 128
