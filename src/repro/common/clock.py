"""Deliberately unsynchronized per-system clocks.

The paper's headline constraint is that LSN generation must work
*without* synchronized clocks (Section 3: "we assume that clocks are not
synchronized across the complex of systems both in SD and CS").  To make
that constraint testable instead of rhetorical, every simulated system
owns a :class:`SkewedClock` whose readings are offset and drift-scaled
relative to simulation time.  No recovery-relevant code path may consult
these clocks; tests assert that LSN behaviour is invariant under
arbitrary skew.
"""

from __future__ import annotations

import time as _time


def wall_seconds() -> float:
    """Monotonic wall-clock reading — **bench harness only**.

    The simulation itself must never observe real time (rule R002);
    this module is R002's single allowed home for clock access, and
    this helper exists so the out-of-simulation tooling (the
    ``repro.bench`` suite runner, micro-benchmark timing loops) can
    measure elapsed wall time without re-importing ``time`` elsewhere.
    """
    return _time.perf_counter()


class SkewedClock:
    """A logical clock with constant offset and rate drift.

    Readings are ``offset + rate * ticks`` where ``ticks`` advances by
    one per :meth:`tick`.  Determinism matters more than realism here:
    two runs with the same parameters read identical times.
    """

    def __init__(self, offset: float = 0.0, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError("clock rate must be positive")
        self.offset = offset
        self.rate = rate
        self._ticks = 0

    def tick(self, n: int = 1) -> None:
        """Advance the underlying tick counter by ``n``."""
        if n < 0:
            raise ValueError("cannot tick backwards")
        self._ticks += n

    def now(self) -> float:
        """Current (skewed) clock reading."""
        return self.offset + self.rate * self._ticks

    @property
    def ticks(self) -> int:
        """Raw tick count (unskewed), for test introspection only."""
        return self._ticks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SkewedClock(offset={self.offset!r}, rate={self.rate!r}, "
            f"ticks={self._ticks})"
        )
