"""Foundational types shared by every subsystem.

This package deliberately contains no policy: it defines the vocabulary
of the reproduction (LSNs, log addresses, errors, deterministic clocks,
counters) that the storage engine, the WAL layer and the two
architectures (shared disks and client-server) build on.
"""

from repro.common.config import (
    DEFAULT_BUFFER_POOL_PAGES,
    LSN_SIZE,
    NULL_LSN,
    PAGE_DATA_SIZE,
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
)
from repro.common.clock import SkewedClock
from repro.common.errors import (
    BufferPoolFullError,
    CorruptPageError,
    DeadlockError,
    LockTimeoutError,
    MediaError,
    ReproError,
    TransactionAbortedError,
    WALViolationError,
)
from repro.common.lsn import LogAddress, Lsn, NULL_LOG_ADDRESS, max_lsn
from repro.common.stats import StatsRegistry

__all__ = [
    "DEFAULT_BUFFER_POOL_PAGES",
    "LSN_SIZE",
    "NULL_LSN",
    "NULL_LOG_ADDRESS",
    "PAGE_DATA_SIZE",
    "PAGE_HEADER_SIZE",
    "PAGE_SIZE",
    "BufferPoolFullError",
    "CorruptPageError",
    "DeadlockError",
    "LockTimeoutError",
    "LogAddress",
    "Lsn",
    "MediaError",
    "ReproError",
    "SkewedClock",
    "StatsRegistry",
    "TransactionAbortedError",
    "WALViolationError",
    "max_lsn",
]
