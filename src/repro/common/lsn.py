"""Log sequence numbers and log record addresses.

The paper's central distinction is between two values that single-system
DBMSs conflate:

* the **LSN** stored in a page header (``page_LSN``), which after this
  paper is an *update sequence number* — it must only increase per page
  across the whole complex of systems; and
* the **log address** of a record inside one system's local log file,
  which the buffer manager needs for WAL enforcement and which restart
  recovery uses as a scan position.

We keep LSNs as plain ``int`` (aliased :data:`Lsn`) for speed, and make
log addresses an explicit value type carrying the owning system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.common.config import NULL_LSN

# An LSN is an unsigned 64-bit integer.  Using a bare int keeps the hot
# paths (log append, redo comparisons) cheap; the alias documents intent.
Lsn = int


def max_lsn(values: Iterable[Lsn]) -> Lsn:
    """Return the maximum of ``values``, or :data:`NULL_LSN` if empty."""
    return max(values, default=NULL_LSN)


@dataclass(frozen=True, order=True)
class LogAddress:
    """Logical address of a log record: ``(system_id, offset)``.

    ``offset`` is the byte offset of the record in the owning system's
    local log file.  Addresses are totally ordered; comparing addresses
    from *different* systems is meaningful only as an arbitrary total
    order (the paper never requires cross-system address comparison —
    the whole point of the USN scheme is that recovery compares LSNs,
    not addresses).
    """

    system_id: int
    offset: int

    def advance(self, nbytes: int) -> "LogAddress":
        """Address ``nbytes`` past this one in the same log."""
        return LogAddress(self.system_id, self.offset + nbytes)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"S{self.system_id}@{self.offset}"


def addresses_for(system_id: int, offsets: Iterable[int]) -> List[LogAddress]:
    """Build one :class:`LogAddress` per offset, all in ``system_id``.

    Hot-lane constructor for batched log appends: a frozen dataclass
    pays ``object.__setattr__`` per field *plus* the ``__init__``
    dispatch on every construction, which dominates when a batch mints
    dozens of addresses.  Bypassing ``__init__`` here is safe because
    ``LogAddress`` has exactly the two fields assigned below.
    """
    new = LogAddress.__new__
    setfield = object.__setattr__
    out: List[LogAddress] = []
    add = out.append
    for offset in offsets:
        addr = new(LogAddress)
        setfield(addr, "system_id", system_id)
        setfield(addr, "offset", offset)
        add(addr)
    return out


# Sentinel "no address": compares below every real address of system 0
# and is falsy in the offset sense.  Code must check ``is_null_address``
# rather than relying on ordering across systems.
NULL_LOG_ADDRESS = LogAddress(-1, -1)


def is_null_address(addr: LogAddress) -> bool:
    """True iff ``addr`` is the :data:`NULL_LOG_ADDRESS` sentinel."""
    return addr.system_id < 0
