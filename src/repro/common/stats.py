"""Deterministic cost counters.

The 1992 paper argues in terms of avoided costs: synchronous page reads
saved by the reallocation rule, log-merge comparisons, global-lock
messages for a shared log, space overhead in space map pages.  Because
our substrate is a simulator, we report these as exact counters rather
than wall-clock time; every subsystem increments a shared
:class:`StatsRegistry` so experiments can diff costs across schemes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Mapping, Tuple


class CounterHandle:
    """A pre-resolved counter: bumping it skips the registry's per-call
    string hashing (the fast lane for hot loops).

    A handle owns its running value; the registry merges handle values
    back into every read (:meth:`StatsRegistry.get`, ``snapshot`` ...),
    so mixing ``registry.incr(NAME)`` and ``handle.bump()`` on the same
    name stays coherent.  ``bump`` deliberately skips the negative-
    amount guard of :meth:`StatsRegistry.incr` — handles live on
    audited hot paths that only ever move counters forward.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def bump(self, amount: int = 1) -> None:
        """Increase the counter by ``amount`` (hot path, unchecked)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CounterHandle({self.name!r}, value={self.value})"


class StatsRegistry:
    """A named bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self._counters: "Counter[str]" = Counter()
        self._handles: Dict[str, CounterHandle] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only move forward")
        self._counters[name] += amount

    def handle(self, name: str) -> CounterHandle:
        """The interned :class:`CounterHandle` for ``name``.

        Repeated calls return the same handle, so every holder bumps
        the same underlying value.  Handles survive :meth:`reset`
        (their value is zeroed, the object stays valid).
        """
        found = self._handles.get(name)
        if found is None:
            found = CounterHandle(name)
            self._handles[name] = found
        return found

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        found = self._handles.get(name)
        base = self._counters[name]
        return base + found.value if found is not None else base

    def snapshot(self) -> Dict[str, int]:
        """A copy of all counters (handle values merged), for reporting."""
        out = dict(self._counters)
        for name, handle in self._handles.items():
            if handle.value:
                out[name] = out.get(name, 0) + handle.value
        return out

    def reset(self) -> None:
        """Zero every counter (used between experiment phases)."""
        self._counters.clear()
        for handle in self._handles.values():
            handle.value = 0

    def diff(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counters minus a prior :meth:`snapshot`, dropping zeros."""
        out: Dict[str, int] = {}
        for name, value in self.snapshot().items():
            delta = value - before.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self.snapshot().items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatsRegistry({self.snapshot()!r})"


# Well-known counter names, centralised so experiments and subsystems
# agree on spelling.  (Plain strings on purpose: the registry accepts
# ad-hoc names too, e.g. per-experiment counters.)
DISK_PAGE_READS = "disk.page_reads"
DISK_PAGE_WRITES = "disk.page_writes"
LOG_RECORDS_WRITTEN = "log.records_written"
LOG_BYTES_WRITTEN = "log.bytes_written"
LOG_FORCES = "log.forces"
LOG_FORCES_COALESCED = "log.forces_coalesced"
LOCK_REQUESTS = "lock.requests"
LOCK_WAITS = "lock.waits"
MESSAGES_SENT = "net.messages_sent"
MESSAGE_BYTES = "net.message_bytes"
MERGE_COMPARISONS = "merge.comparisons"
COMMIT_LSN_HITS = "commit_lsn.hits"
COMMIT_LSN_MISSES = "commit_lsn.misses"
PAGE_READS_AVOIDED = "storage.page_reads_avoided"
GLOBAL_LOG_LOCKS = "global_log.lock_acquisitions"
GLOBAL_LOG_LOCK_MESSAGES = "net.messages.global_log_lock"
NET_MAX_LSN_BROADCAST = "net.messages.max_lsn_broadcast"
LOG_BYTES_ARCHIVED = "log.bytes_archived"
LOG_ARCHIVE_SCANS = "log.archive_scans"
LOCK_ESCALATIONS = "lock.escalations"
BUFFER_BATCH_FLUSHES = "buffer.batch_flushes"
FAULTS_INJECTED = "faults.injected"
DEGRADED_ENTRIES = "faults.degraded_entries"
DEGRADED_REJECTIONS = "faults.degraded_rejections"
NET_DROPS_INJECTED = "net.drops_injected"
NET_RETRANSMITS = "net.retransmits"
NET_DUP_DROPPED = "net.dup_dropped"
NET_DELAYED = "net.delayed"
LOCK_RETRIES = "lock.retries"
LOCK_RETRY_TIMEOUTS = "lock.retry_timeouts"
CLUSTER_REDO_PARTITIONS = "cluster.redo_partitions"
CLUSTER_REDO_PARALLEL_RUNS = "cluster.redo_parallel_runs"
CLUSTER_CROSS_SHARD_CHECKS = "cluster.cross_shard_checks"
BULK_UPDATE_BATCHES = "bulk.update_batches"
BULK_READ_BATCHES = "bulk.read_batches"
BULK_OPS_APPLIED = "bulk.ops_applied"
RETRY_EXHAUSTED = "faults.retry.exhausted"
NET_PARKED_DRAINED = "net.parked_drained"
NET_PARKED_FAILED = "net.parked_failed"
REPL_RECORDS_SHIPPED = "repl.records_shipped"
REPL_BATCHES_SHIPPED = "repl.batches_shipped"
REPL_ACKS = "repl.acks"
REPL_SHIP_RETRIES = "repl.ship_retries"
REPL_RECORDS_APPLIED = "repl.records_applied"
REPL_APPLY_SKIPPED = "repl.apply_skipped"
REPL_DEGRADED_ENTRIES = "repl.degraded_entries"
REPL_COMMITS_ACKED = "repl.commits_acked"
REPL_PROMOTIONS = "repl.promotions"
INSTANT_OPENS = "instant.opens"
INSTANT_PAGES_RECOVERED = "instant.pages_recovered"
INSTANT_DEMAND_RECOVERIES = "instant.demand_recoveries"
INSTANT_SWEEP_RECOVERIES = "instant.sweep_recoveries"
INSTANT_SWEEP_TICKS = "instant.sweep_ticks"
INSTANT_RECORDS_REDONE = "instant.records_redone"
INSTANT_RECORDS_SKIPPED = "instant.records_skipped"


def message_kind_counter(kind: str) -> str:
    """The per-kind message counter name (``net.messages.<kind>``)."""
    return f"net.messages.{kind}"


def glm_shard_counter(shard: int) -> str:
    """The per-shard GLM request counter (``glm.shard.<n>.requests``)."""
    return f"glm.shard.{shard}.requests"
