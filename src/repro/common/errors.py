"""Exception hierarchy for the reproduction.

All library errors derive from :class:`ReproError` so callers can catch
everything raised by this package with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CorruptPageError(ReproError):
    """A page failed checksum validation or has an invalid layout."""


class MediaError(ReproError):
    """A disk page could not be read (simulated media failure).

    Recovering from this error is the job of
    :mod:`repro.recovery.media` (image copy + merged-log redo).
    """


class WALViolationError(ReproError):
    """The buffer manager was asked to write a dirty page whose latest
    update's log record has not yet been forced to stable storage.

    A correct configuration never raises this: the buffer manager forces
    the log first.  The error exists so tests can assert the protocol is
    enforced when forcing is artificially disabled.
    """


class BufferPoolFullError(ReproError):
    """No evictable frame exists (all pages fixed)."""


class LockTimeoutError(ReproError):
    """A lock request waited longer than the configured bound."""


class DeadlockError(ReproError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockWouldBlock(ReproError):
    """A lock request conflicts and was enqueued.

    The single-threaded simulation cannot suspend a caller, so the
    engine surfaces the wait as this exception; workload drivers catch
    it and reschedule the step (the request keeps its queue position).
    """

    def __init__(self, owner: object, resource: object) -> None:
        super().__init__(f"{owner} must wait for {resource}")
        self.owner = owner
        self.resource = resource


class TransactionAbortedError(ReproError):
    """An operation was attempted on an aborted transaction."""


class RecoveryError(ReproError):
    """Restart or media recovery encountered an inconsistency."""


class ProtocolError(ReproError):
    """A shared-disks or client-server protocol rule was violated
    (e.g. a client shipped pages without the covering log records)."""
