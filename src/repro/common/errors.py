"""Exception hierarchy for the reproduction.

All library errors derive from :class:`ReproError` so callers can catch
everything raised by this package with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CorruptPageError(ReproError):
    """A page failed checksum validation or has an invalid layout."""


class MediaError(ReproError):
    """A disk page could not be read (simulated media failure).

    Recovering from this error is the job of
    :mod:`repro.recovery.media` (image copy + merged-log redo).
    """


class FaultInjectedError(ReproError):
    """A deterministic injected fault fired (see :mod:`repro.faults`).

    Raised **only** by the fault injector (rule R007 forbids ad-hoc
    raises elsewhere), so catching it always means "the configured
    :class:`~repro.faults.FaultPlan` fired here", never a genuine
    protocol failure.  Carries the injection point, the action, the
    per-point hit number and the system the point attributed the hit
    to (0 when the site cannot know, e.g. the shared disk).
    """

    def __init__(self, point: str, action: str, system: int = 0,
                 hit: int = 0) -> None:
        super().__init__(
            f"injected {action} at {point} (hit {hit}, system {system})"
        )
        self.point = point
        self.action = action
        self.system = system
        self.hit = hit


class TornPageError(FaultInjectedError):
    """An injected torn write: the disk kept a half-old/half-new image.

    The corrupt image stays on disk — a later read of the page fails
    its checksum and raises plain :class:`MediaError`, exactly how a
    real torn write is discovered; media recovery then rebuilds the
    page.  Subclasses :class:`FaultInjectedError` because the tear is
    always injector-made (rule R007 guards the raise site).
    """


class RetryExhaustedError(ReproError):
    """A bounded retry loop spent its whole attempt budget.

    Raised by :func:`repro.faults.policy.run_with_retry` when every
    attempt (including the first) failed with a retryable error.  The
    ``faults.retry.exhausted`` counter is bumped at the raise site, so
    experiments can count exhaustion events without catching this.
    """

    def __init__(self, operation: str, attempts: int) -> None:
        super().__init__(
            f"{operation} failed after {attempts} attempt(s)"
        )
        self.operation = operation
        self.attempts = attempts


class DegradedModeError(ReproError):
    """An update was rejected because the system is running degraded.

    A log-device failure (injected at the ``log.force`` fault point)
    flips a :class:`~repro.sd.instance.DbmsInstance` or the
    :class:`~repro.cs.server.CsServer` into read-only degraded mode
    instead of taking the whole complex down: reads keep working,
    anything that would need new log records raises this error, and a
    restart (which "repairs" the log device) clears the mode.
    """


class WALViolationError(ReproError):
    """The buffer manager was asked to write a dirty page whose latest
    update's log record has not yet been forced to stable storage.

    A correct configuration never raises this: the buffer manager forces
    the log first.  The error exists so tests can assert the protocol is
    enforced when forcing is artificially disabled.
    """


class BufferPoolFullError(ReproError):
    """No evictable frame exists (all pages fixed)."""


class LockTimeoutError(ReproError):
    """A lock request waited longer than the configured bound."""


class DeadlockError(ReproError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockWouldBlock(ReproError):
    """A lock request conflicts and was enqueued.

    The single-threaded simulation cannot suspend a caller, so the
    engine surfaces the wait as this exception; workload drivers catch
    it and reschedule the step (the request keeps its queue position).
    """

    def __init__(self, owner: object, resource: object) -> None:
        super().__init__(f"{owner} must wait for {resource}")
        self.owner = owner
        self.resource = resource


class TransactionAbortedError(ReproError):
    """An operation was attempted on an aborted transaction."""


class RecoveryError(ReproError):
    """Restart or media recovery encountered an inconsistency."""


class ProtocolError(ReproError):
    """A shared-disks or client-server protocol rule was violated
    (e.g. a client shipped pages without the covering log records)."""
