"""Buffer control blocks.

One BCB per buffered page.  The two log-position fields are the paper's
answer to Problems 1.b and 2:

* ``rec_addr`` — byte offset, in the local log, of the update record
  that turned the page from clean to dirty ("RecAddr ... becomes the
  starting point for page recovery", Section 3.2.2).  Recorded in
  checkpoints to bound the restart redo scan.
* ``last_update_end`` — byte offset just past the most recent update
  record for the page; the WAL protocol requires the log stable through
  this offset before the page may be written to disk (Section 3.3).

``rec_lsn`` is the LSN counterpart of ``rec_addr``; the CS client ships
it with dirty pages, and the server maps it back to a server-log
RecAddr (Section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.config import NULL_LSN
from repro.common.lsn import Lsn
from repro.storage.page import Page


@dataclass
class BufferControlBlock:
    """Bookkeeping for one buffered page."""

    page: Page
    dirty: bool = False
    fix_count: int = 0
    rec_lsn: Lsn = NULL_LSN          # LSN of first dirtying update
    rec_addr: Optional[int] = None   # local-log offset of that update
    last_update_end: int = 0         # log offset past the latest update

    @property
    def page_id(self) -> int:
        return self.page.page_id

    def note_update(self, lsn: Lsn, record_offset: int, record_end: int) -> None:
        """Record that an update was just logged against this page.

        ``record_offset``/``record_end`` are byte positions of the log
        record in the local log.  The first update of a clean page sets
        RecAddr / RecLSN; every update advances the WAL high-water mark.
        """
        if not self.dirty:
            self.dirty = True
            self.rec_lsn = lsn
            self.rec_addr = record_offset
        self.last_update_end = record_end

    def mark_clean(self) -> None:
        """Called after the page is safely on disk (or at the server)."""
        self.dirty = False
        self.rec_lsn = NULL_LSN
        self.rec_addr = None
        self.last_update_end = 0
