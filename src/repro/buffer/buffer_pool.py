"""Buffer pool with steal/no-force policy and WAL enforcement.

Policy corners (Section 1.4 of the paper):

* **no-force** — commits do not write pages to disk; restart redo
  reapplies whatever was lost.
* **steal** — dirty pages may be written to disk (e.g. on eviction)
  before their transactions commit; undo removes them if needed.
* **WAL** — before a dirty page is written, the log is forced through
  the address just past the page's most recent update record (tracked
  in the BCB, Section 3.3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.config import DEFAULT_BUFFER_POOL_PAGES, NULL_LSN
from repro.common.errors import BufferPoolFullError, WALViolationError
from repro.common.lsn import Lsn
from repro.common.stats import BUFFER_BATCH_FLUSHES
from repro.buffer.bcb import BufferControlBlock
from repro.faults import points as fp
from repro.faults.injector import NULL_INJECTOR, NullFaultInjector
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.storage.disk import SharedDisk
from repro.storage.page import Page
from repro.wal.log_manager import LogManager


class BufferPool:
    """LRU buffer pool over a shared disk, wired to a local log manager.

    ``on_before_write`` is an optional hook invoked with the BCB just
    before a page write reaches the disk; the SD coherency layer uses it
    to observe page migrations, and tests use it for fault injection.
    """

    def __init__(
        self,
        disk: SharedDisk,
        log: LogManager,
        capacity: int = DEFAULT_BUFFER_POOL_PAGES,
        enforce_wal: bool = True,
        on_before_write: Optional[Callable[[BufferControlBlock], None]] = None,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.log = log
        self.capacity = capacity
        self.enforce_wal = enforce_wal
        self.on_before_write = on_before_write
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._frames: "OrderedDict[int, BufferControlBlock]" = OrderedDict()
        #: Instant-restart seam: when set, called with the page id on
        #: every frame miss *before* the disk read, so a lazily
        #: recovered page's redo chain is applied to disk first
        #: (:mod:`repro.recovery.instant`).  ``None`` — the default —
        #: keeps the classic fix path byte-identical.
        self.recovery_intercept: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # fixing
    # ------------------------------------------------------------------
    def fix(self, page_id: int) -> Page:
        """Pin ``page_id`` in the pool, reading it from disk on a miss."""
        bcb = self._frames.get(page_id)
        if bcb is None:
            if self.recovery_intercept is not None:
                self.recovery_intercept(page_id)
            self._make_room()
            page = self.disk.read_page(page_id)
            bcb = BufferControlBlock(page=page)
            self._frames[page_id] = bcb
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.PAGE_READ, system=self.log.system_id, page=page_id
                )
        self._frames.move_to_end(page_id)
        bcb.fix_count += 1
        return bcb.page

    def unfix(self, page_id: int) -> None:
        """Release one pin on ``page_id``."""
        bcb = self._require(page_id)
        if bcb.fix_count <= 0:
            raise ValueError(f"page {page_id} is not fixed")
        bcb.fix_count -= 1

    def install_page(self, page: Page, dirty: bool = True) -> Page:
        """Place a page into the pool *without a disk read*.

        Two callers: page reallocation (the formatted page never touches
        disk first — the optimization experiment E5 measures) and
        cross-system transfer in SD (the receiving pool gets the image
        directly).  The page arrives fixed once.
        """
        if page.page_id in self._frames:
            raise ValueError(f"page {page.page_id} already buffered")
        self._make_room()
        bcb = BufferControlBlock(page=page, dirty=dirty, fix_count=1)
        self._frames[page.page_id] = bcb
        return page

    def put_page(self, page: Page) -> None:
        """Replace (or install) a page's in-memory image, no disk I/O.

        The CS server uses this when a client ships a page back: the
        received image supersedes whatever the server had cached.
        """
        bcb = self._frames.get(page.page_id)
        if bcb is None:
            self._make_room()
            self._frames[page.page_id] = BufferControlBlock(page=page)
        else:
            bcb.page = page
        self._frames.move_to_end(page.page_id)

    def receive_dirty(self, page: Page, rec_lsn: Lsn, rec_addr: int,
                      last_update_end: int) -> None:
        """CS server receive path for a dirty page (Section 3.2.2).

        ``rec_addr`` is the server-log address the client's RecLSN maps
        to.  If the server *already* holds a dirty version, the old
        RecAddr is retained (the paper is explicit about this: the
        earlier dirtying is the redo bound).
        """
        self.put_page(page)
        bcb = self._frames[page.page_id]
        if not bcb.dirty:
            bcb.dirty = True
            bcb.rec_lsn = rec_lsn
            bcb.rec_addr = rec_addr
        bcb.last_update_end = max(bcb.last_update_end, last_update_end)

    # ------------------------------------------------------------------
    # update bookkeeping
    # ------------------------------------------------------------------
    def note_update(self, page_id: int, lsn: Lsn, record_offset: int,
                    record_end: int) -> None:
        """Tell the pool an update to ``page_id`` was just logged."""
        self._require(page_id).note_update(lsn, record_offset, record_end)

    def bcb(self, page_id: int) -> BufferControlBlock:
        """The BCB for a buffered page (introspection/tests)."""
        return self._require(page_id)

    def contains(self, page_id: int) -> bool:
        return page_id in self._frames

    def is_dirty(self, page_id: int) -> bool:
        bcb = self._frames.get(page_id)
        return bcb is not None and bcb.dirty

    # ------------------------------------------------------------------
    # writing (WAL enforcement point)
    # ------------------------------------------------------------------
    def write_page(self, page_id: int) -> None:
        """Force ``page_id`` to disk, honouring the WAL protocol."""
        bcb = self._require(page_id)
        if bcb.dirty and bcb.last_update_end:
            if not self.log.is_stable(bcb.last_update_end):
                if not self.enforce_wal:
                    raise WALViolationError(
                        f"page {page_id}: log not stable through "
                        f"offset {bcb.last_update_end} and WAL forcing disabled"
                    )
                self.log.force(up_to=bcb.last_update_end)
        self._write_stable(page_id, bcb)

    def _write_stable(self, page_id: int, bcb: BufferControlBlock) -> None:
        """Write a page whose WAL obligation is already satisfied.

        The per-page half of :meth:`write_page`: before-write hook,
        disk write, clean marking, trace — everything except the log
        force, which the batch lane pays once for a whole flush set.
        """
        if self.on_before_write is not None:
            self.on_before_write(bcb)
        if self._injector.enabled:
            # The classic crash window: WAL obligation satisfied, page
            # write about to hit the disk.
            self._injector.fire(
                fp.BUFFER_WRITE, system=self.log.system_id, page=page_id
            )
        self.disk.write_page(bcb.page)
        bcb.mark_clean()
        if self.tracer.enabled:
            self.tracer.emit(
                ev.PAGE_WRITE,
                system=self.log.system_id,
                page=page_id,
                page_lsn=int(bcb.page.page_lsn),
            )

    def flush_pages(self, page_ids: Iterable[int]) -> int:
        """Write a set of pages with one coalesced WAL force.

        The batch fast lane: where N ``write_page`` calls force the log
        N times (each through its own page's last-update boundary), a
        batch computes the set's maximum boundary and forces once —
        the deferred-force shape of every group-commit design.  Page
        writes themselves (``on_before_write`` hook included) still
        happen per page, in the order given.

        With ``enforce_wal`` disabled the whole batch is validated
        before any page touches disk, so a WAL violation surfaces with
        every page image intact.  Returns the number of pages written.
        """
        ids = list(page_ids)
        frames = self._frames
        try:
            bcbs = [frames[page_id] for page_id in ids]
        except KeyError:
            bcbs = [self._require(page_id) for page_id in ids]
        boundaries: List[int] = []
        flushed = self.log.flushed_offset
        for page_id, bcb in zip(ids, bcbs):
            if bcb.dirty and bcb.last_update_end:
                if bcb.last_update_end > flushed:
                    if not self.enforce_wal:
                        raise WALViolationError(
                            f"page {page_id}: log not stable through "
                            f"offset {bcb.last_update_end} and WAL "
                            "forcing disabled"
                        )
                    boundaries.append(bcb.last_update_end)
        if boundaries:
            self.log.force_through(boundaries)
        if ids and self.on_before_write is None \
                and not self._injector.enabled and not self.tracer.enabled:
            # Slab fast lane: no hook, no fault point, no per-page
            # events to emit — the whole set rides one batched disk
            # call (same stored bytes and counter totals as the loop).
            self.disk.write_many([bcb.page for bcb in bcbs], page_ids=ids)
            for bcb in bcbs:
                # mark_clean(), inlined: the attribute stores are the
                # whole body and this loop rides the flush hot path.
                bcb.dirty = False
                bcb.rec_lsn = NULL_LSN
                bcb.rec_addr = None
                bcb.last_update_end = 0
        else:
            for page_id, bcb in zip(ids, bcbs):
                self._write_stable(page_id, bcb)
        if ids:
            self.log.stats.incr(BUFFER_BATCH_FLUSHES)
        return len(ids)

    def flush_all(self) -> int:
        """Write every dirty page (quiesce / clean shutdown).

        Rides the batch lane: one log force covers the whole set.
        """
        return self.flush_pages(
            page_id for page_id, bcb in self._frames.items() if bcb.dirty
        )

    def drop_page(self, page_id: int, allow_dirty: bool = False) -> None:
        """Remove a page from the pool without writing it.

        The SD coherency protocol invalidates clean cached copies when
        another system takes a write lock; dropping a dirty page is only
        legal during crash simulation (``allow_dirty=True``).
        """
        bcb = self._frames.get(page_id)
        if bcb is None:
            return
        if bcb.dirty and not allow_dirty:
            raise ValueError(f"refusing to drop dirty page {page_id}")
        if bcb.fix_count and not allow_dirty:
            raise ValueError(f"refusing to drop fixed page {page_id}")
        del self._frames[page_id]

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        # reprolint: disable=R012 -- LRU order IS insertion order here;
        # the dict sequence is deterministic and sorting would change
        # the eviction policy.
        for page_id, bcb in self._frames.items():  # LRU order
            if bcb.fix_count == 0:
                was_dirty = bcb.dirty
                if was_dirty:
                    self.write_page(page_id)
                del self._frames[page_id]
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.PAGE_EVICT,
                        system=self.log.system_id,
                        page=page_id,
                        dirty=was_dirty,
                    )
                return
        raise BufferPoolFullError(
            f"all {self.capacity} frames fixed; cannot evict"
        )

    def shrink_to(self, target_frames: int) -> int:
        """Batch-evict LRU unfixed pages down to ``target_frames``.

        The eviction fast lane for quiesce/checkpoint pressure: all
        dirty victims are flushed through :meth:`flush_pages` (one
        coalesced log force), then every victim is dropped.  Pinned
        pages are skipped, so the pool may stay above the target when
        too many frames are fixed.  Returns the number of evictions.
        """
        if target_frames < 0:
            raise ValueError("target_frames must be >= 0")
        victims: List[int] = []
        excess = len(self._frames) - target_frames
        for page_id, bcb in self._frames.items():  # LRU order
            if len(victims) >= excess:
                break
            if bcb.fix_count == 0:
                victims.append(page_id)
        dirty = [
            page_id for page_id in victims if self._frames[page_id].dirty
        ]
        if dirty:
            self.flush_pages(dirty)
        for page_id in victims:
            del self._frames[page_id]
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.PAGE_EVICT,
                    system=self.log.system_id,
                    page=page_id,
                    dirty=page_id in dirty,
                )
        return len(victims)

    # ------------------------------------------------------------------
    # checkpoint & crash support
    # ------------------------------------------------------------------
    def dirty_page_table(self) -> Dict[int, Tuple[Lsn, int]]:
        """``{page_id: (RecLSN, RecAddr)}`` for every dirty page.

        This is the buffer-pool summary a checkpoint records
        (Section 3.2.2); restart redo starts at the minimum RecAddr.
        """
        table: Dict[int, Tuple[Lsn, int]] = {}
        for page_id, bcb in self._frames.items():
            if bcb.dirty:
                table[page_id] = (bcb.rec_lsn, bcb.rec_addr or 0)
        return table

    def crash(self) -> None:
        """Lose the entire pool (system failure)."""
        self._frames.clear()

    def pages(self) -> Iterator[BufferControlBlock]:
        return iter(self._frames.values())

    def __len__(self) -> int:
        return len(self._frames)

    def _require(self, page_id: int) -> BufferControlBlock:
        bcb = self._frames.get(page_id)
        if bcb is None:
            raise KeyError(f"page {page_id} is not buffered")
        return bcb

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dirty = sum(1 for b in self._frames.values() if b.dirty)
        return (
            f"BufferPool(frames={len(self._frames)}/{self.capacity}, "
            f"dirty={dirty})"
        )
