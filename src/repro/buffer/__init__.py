"""Buffer management: frames, BCBs, WAL enforcement.

The paper's Problem 2 (Section 2) is how the buffer manager learns, in
SD and CS, how far the log must be forced before a dirty page may go to
disk — once page_LSN is a USN it is no longer a log address.  The
answer (Section 3.3): track the *logical address* of the page's most
recent update record in the buffer control block, alongside the RecAddr
of the update that first dirtied the page (needed for checkpoints and
page recovery start points, Section 3.2.2).
"""

from repro.buffer.bcb import BufferControlBlock
from repro.buffer.buffer_pool import BufferPool

__all__ = ["BufferControlBlock", "BufferPool"]
