"""Transactions: identity, state, undo chains, savepoints.

A transaction executes entirely at one system (SD, Section 1.1) or one
client (CS), so its log records all live in one local log and its undo
never needs a merged log — one of the paper's headline advantages.
"""

from repro.txn.transaction import Transaction, TxnState
from repro.txn.manager import TransactionManager

__all__ = ["Transaction", "TransactionManager", "TxnState"]
