"""Transaction objects and their log bookkeeping."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.config import NULL_LSN
from repro.common.lsn import Lsn


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"   # commit record stable; END may be pending
    ABORTING = "aborting"
    ENDED = "ended"


@dataclass
class UndoEntry:
    """Position of one undoable record of this transaction.

    ``offset`` is the record's byte offset in the local log (SD) or an
    index into the client's retained-record list (CS); ``lsn`` orders
    undo and matches CLR ``undo_next_lsn`` pointers.
    """

    lsn: Lsn
    offset: int


@dataclass
class Transaction:
    """One transaction's volatile state."""

    txn_id: int
    system_id: int
    state: TxnState = TxnState.ACTIVE
    first_lsn: Lsn = NULL_LSN      # feeds the Commit_LSN computation
    last_lsn: Lsn = NULL_LSN       # PrevLSN for the next record
    undo_entries: List[UndoEntry] = field(default_factory=list)
    savepoints: Dict[str, int] = field(default_factory=dict)
    # Lock-escalation bookkeeping (SD engine): record locks taken per
    # page, and pages where a page-X lock now covers everything.
    record_lock_counts: Dict[int, int] = field(default_factory=dict)
    escalated_pages: set = field(default_factory=set)

    def note_logged(self, lsn: Lsn, offset: int, undoable: bool) -> None:
        """Bookkeeping after any record of this txn hits the log."""
        if self.first_lsn == NULL_LSN:
            self.first_lsn = lsn
        self.last_lsn = lsn
        if undoable:
            self.undo_entries.append(UndoEntry(lsn=lsn, offset=offset))

    def is_update_transaction(self) -> bool:
        """Has this transaction written any log record?"""
        return self.first_lsn != NULL_LSN

    # ------------------------------------------------------------------
    # savepoints (ARIES partial rollback)
    # ------------------------------------------------------------------
    def set_savepoint(self, name: str) -> None:
        self.savepoints[name] = len(self.undo_entries)

    def entries_since_savepoint(self, name: str) -> List[UndoEntry]:
        """Undoable entries logged after ``name``, newest first."""
        mark = self.savepoints.get(name)
        if mark is None:
            raise KeyError(f"no savepoint {name!r} in txn {self.txn_id}")
        return list(reversed(self.undo_entries[mark:]))

    def truncate_to_savepoint(self, name: str) -> None:
        """Discard undo entries rolled back past ``name``."""
        mark = self.savepoints[name]
        del self.undo_entries[mark:]
        # Savepoints set after `name` are no longer meaningful.
        self.savepoints = {
            sp: pos for sp, pos in self.savepoints.items() if pos <= mark
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Transaction(id={self.txn_id}, sys={self.system_id}, "
            f"state={self.state.value}, first={self.first_lsn}, "
            f"last={self.last_lsn})"
        )
