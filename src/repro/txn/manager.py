"""Per-system transaction table."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.common.config import NULL_LSN
from repro.common.lsn import Lsn
from repro.txn.transaction import Transaction, TxnState

# Transaction ids embed the owning system so they are unique complex-wide
# and humans can read them: txn 3 of system 2 is 2_000_003.
_SYSTEM_STRIDE = 1_000_000


class TransactionManager:
    """Creates transactions and answers Commit_LSN queries for one system."""

    def __init__(self, system_id: int) -> None:
        self.system_id = system_id
        self._next_seq = 1
        self._txns: Dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        txn_id = self.system_id * _SYSTEM_STRIDE + self._next_seq
        self._next_seq += 1
        txn = Transaction(txn_id=txn_id, system_id=self.system_id)
        self._txns[txn_id] = txn
        return txn

    def get(self, txn_id: int) -> Transaction:
        return self._txns[txn_id]

    def end(self, txn: Transaction) -> None:
        """Transaction fully finished; forget it."""
        txn.state = TxnState.ENDED
        self._txns.pop(txn.txn_id, None)

    def active(self) -> Iterator[Transaction]:
        return (
            t for t in self._txns.values()
            if t.state in (TxnState.ACTIVE, TxnState.ABORTING)
        )

    def active_count(self) -> int:
        return sum(1 for _ in self.active())

    def oldest_active_first_lsn(self) -> Optional[Lsn]:
        """First-record LSN of the oldest active *update* transaction.

        This is the system's contribution to the complex-wide
        Commit_LSN (Section 2, problem 4): every page whose page_LSN is
        below the minimum of these values across all systems holds only
        committed data.  ``None`` means no active update transaction.
        """
        firsts = [
            t.first_lsn for t in self.active()
            if t.first_lsn != NULL_LSN
        ]
        return min(firsts) if firsts else None

    def crash(self) -> None:
        """All volatile transaction state disappears with the system."""
        self._txns.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransactionManager(system={self.system_id}, "
            f"live={len(self._txns)})"
        )
