"""A CS client: page cache, local USN log manager, log shipping.

Clients own no disk.  They cache server pages, update them locally
under server-granted locks, assign LSNs locally with the USN rule
(Section 3.2.1 — no server round trip per log record), and ship their
buffered log records to the server when a dirty page goes back or a
transaction commits, whichever happens first (Section 3.3).

Per Section 3.2.2, the client's buffer manager associates a **RecLSN**
with each dirty page — the LSN bounding the first update that dirtied
it — and ships it with the page so the server can map it to a RecAddr
in the single log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.common.clock import SkewedClock
from repro.common.config import NULL_LSN
from repro.common.errors import LockWouldBlock, ReproError
from repro.common.lsn import Lsn
from repro.common.stats import PAGE_READS_AVOIDED
from repro.faults import points as fp
from repro.locking.lock_manager import LockMode, LockStatus, record_lock
from repro.obs import events as ev
from repro.recovery.apply import apply_payload, stamp_page_lsn
from repro.storage.page import Page, PageType
from repro.storage.space_map import SpaceMap
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction, TxnState
from repro.wal.client_log import ClientLogManager
from repro.wal.records import (
    LogRecord,
    PageOp,
    RecordKind,
    encode_op,
    make_clr,
    make_format,
    make_update,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cs.server import CsServer


@dataclass
class _CachedPage:
    page: Page
    dirty: bool = False
    rec_lsn: Lsn = NULL_LSN   # LSN of first dirtying update (RecLSN)


class CsClient:
    """One client workstation of the CS architecture."""

    def __init__(
        self,
        client_id: int,
        server: "CsServer",
        cache_capacity: int = 0,
        isolation: str = "cursor_stability",
        clock: Optional[SkewedClock] = None,
    ) -> None:
        """``cache_capacity`` bounds the page cache (0 = unbounded,
        matching workstation virtual storage); eviction is LRU, and
        evicting a dirty page ships it — with the covering log records,
        per the Section 3.3 protocol — back to the server.

        ``isolation`` is "cursor_stability" (degree 2, the level the
        Commit_LSN optimization targets) or "repeatable_read" (read
        locks held to commit)."""
        if client_id <= 0:
            raise ValueError("client ids must be positive")
        if cache_capacity < 0:
            raise ValueError("cache capacity cannot be negative")
        if isolation not in ("cursor_stability", "repeatable_read"):
            raise ValueError(
                "isolation must be 'cursor_stability' or 'repeatable_read'"
            )
        self.client_id = client_id
        self.server = server
        self.cache_capacity = cache_capacity
        self.isolation = isolation
        self.stats = server.stats
        self.tracer = server.tracer
        self.injector = server.injector
        self.log = ClientLogManager(client_id, stats=self.stats,
                                    tracer=self.tracer)
        self.txns = TransactionManager(client_id)
        self.cache: Dict[int, _CachedPage] = {}
        self.clock = clock if clock is not None else SkewedClock(
            offset=101.0 * client_id, rate=1.0 + 0.07 * client_id
        )
        self.tracer.register_clock(client_id, self.clock)
        self.crashed = False
        # Lazy (group) commits awaiting their covering ship + force.
        self._pending_commits: list = []
        server.attach_client(self)

    # CommitLsnService duck-type.
    @property
    def system_id(self) -> int:
        return self.client_id

    # ------------------------------------------------------------------
    # transaction control
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        self._check_up()
        txn = self.txns.begin()
        if self.tracer.enabled:
            self.tracer.emit(ev.TXN_BEGIN, system=self.client_id,
                             txn=txn.txn_id)
        return txn

    def commit(self, txn: Transaction, lazy: bool = False) -> None:
        """Commit: buffer the commit record, ship everything, server
        forces its log and releases the locks, then the client ends.

        ``lazy=True`` is client-side group commit: the commit record is
        buffered but nothing ships — one later :meth:`sync_commits`
        (or eager commit) pays a single log-ship round trip and a
        single server force for the whole batch.  A lazy commit is not
        acknowledged until then: locks stay held at the server, and a
        client crash first loses the batch consistently (the records
        never reached the server, and neither did any covered page —
        dirty pages always ship *with* the log records).
        """
        if self.tracer.enabled:
            with self.tracer.span(ev.SPAN_COMMIT, system=self.client_id,
                                  txn=txn.txn_id, lazy=lazy):
                self._commit(txn, lazy)
        else:
            self._commit(txn, lazy)

    def _commit(self, txn: Transaction, lazy: bool) -> None:
        self._check_active(txn)
        commit = LogRecord(kind=RecordKind.COMMIT, txn_id=txn.txn_id,
                           prev_lsn=txn.last_lsn)
        self.log.append(commit)
        txn.note_logged(commit.lsn, 0, undoable=False)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id,
                        prev_lsn=txn.last_lsn)
        self.log.append(end)
        if self.tracer.enabled:
            self.tracer.emit(ev.TXN_COMMIT, system=self.client_id,
                             txn=txn.txn_id, lazy=lazy)
        if lazy:
            self._pending_commits.append(txn)
            return
        self.server.commit_point(self, txn.txn_id)
        self._finish_commit(txn)
        self._finish_pending()

    def sync_commits(self) -> int:
        """Group-commit sync: one ship + one server force acknowledges
        every pending lazy commit.  Returns transactions completed."""
        self._check_up()
        if not self._pending_commits:
            return 0
        self.server.receive_log_records(self)
        self.server.log.force()
        return self._finish_pending()

    def _finish_pending(self) -> int:
        finished = 0
        while self._pending_commits:
            txn = self._pending_commits.pop(0)
            self.server.release_txn_locks(txn.txn_id)
            self._finish_commit(txn)
            finished += 1
        return finished

    def _finish_commit(self, txn: Transaction) -> None:
        txn.state = TxnState.COMMITTED
        self.log.forget_txn(txn.txn_id)
        self.txns.end(txn)

    def rollback(self, txn: Transaction,
                 to_savepoint: Optional[str] = None) -> None:
        """Roll back using the client's retained record copies
        (Section 3.1: undo never needs a merged or remote log)."""
        self._check_up()
        if txn.state not in (TxnState.ACTIVE, TxnState.ABORTING):
            raise ReproError(f"cannot roll back txn in state {txn.state}")
        txn.state = TxnState.ABORTING
        if self.tracer.enabled:
            self.tracer.emit(ev.TXN_ROLLBACK, system=self.client_id,
                             txn=txn.txn_id, savepoint=to_savepoint)
        records = self.log.records_of_txn(txn.txn_id)
        by_lsn = {record.lsn: record for record in records}
        stop_at = 0
        if to_savepoint is not None:
            stop_at = txn.savepoints[to_savepoint]
        # Entries are consumed as compensated so a midway-failed
        # rollback can be retried without double-compensation.
        while len(txn.undo_entries) > stop_at:
            entry = txn.undo_entries[-1]
            self._undo_one(txn, by_lsn[entry.lsn])
            txn.undo_entries.pop()
        if to_savepoint is not None:
            txn.truncate_to_savepoint(to_savepoint)
            txn.state = TxnState.ACTIVE
            return
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id,
                        prev_lsn=txn.last_lsn)
        self.log.append(end)
        # Ship the rollback's CLRs and let the server drop the locks.
        self.server.receive_log_records(self)
        self.server.release_txn_locks(txn.txn_id)
        self.log.forget_txn(txn.txn_id)
        self.txns.end(txn)

    def _undo_one(self, txn: Transaction, record: LogRecord) -> None:
        entry = self._require_cached(record.page_id, for_update=True)
        clr = make_clr(
            txn_id=txn.txn_id, system_id=self.client_id,
            page_id=record.page_id, slot=record.slot,
            redo=record.undo, undo_next_lsn=record.prev_lsn,
            prev_lsn=txn.last_lsn,
        )
        page_lsn_prev = entry.page.page_lsn
        self.log.append(clr, page_lsn=page_lsn_prev)
        apply_payload(entry.page, record.slot, record.undo, clr.lsn)
        self._note_dirty(entry, clr.lsn)
        txn.note_logged(clr.lsn, 0, undoable=False)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.PAGE_UPDATE, system=self.client_id,
                page=record.page_id, slot=record.slot, txn=txn.txn_id,
                lsn=int(clr.lsn), page_lsn_prev=int(page_lsn_prev),
                kind=RecordKind.CLR.name,
            )

    def set_savepoint(self, txn: Transaction, name: str) -> None:
        self._check_active(txn)
        txn.set_savepoint(name)

    # ------------------------------------------------------------------
    # record operations
    # ------------------------------------------------------------------
    def insert(self, txn: Transaction, page_id: int, payload: bytes) -> int:
        self._check_active(txn)
        entry = self._require_cached(page_id, for_update=True)
        slot = entry.page.insert_record(payload)
        try:
            self._lock(txn, record_lock(page_id, slot), LockMode.X)
        except LockWouldBlock:
            entry.page.delete_record(slot)
            raise
        record = make_update(
            txn_id=txn.txn_id, system_id=self.client_id,
            page_id=page_id, slot=slot,
            redo=encode_op(PageOp.INSERT, payload),
            undo=encode_op(PageOp.DELETE),
            prev_lsn=txn.last_lsn,
        )
        self._log_applied_update(txn, entry, record)
        return slot

    def update(self, txn: Transaction, page_id: int, slot: int,
               payload: bytes) -> None:
        self._check_active(txn)
        self._lock(txn, record_lock(page_id, slot), LockMode.X)
        entry = self._require_cached(page_id, for_update=True)
        old = entry.page.read_record(slot)
        if old is None:
            raise ReproError(f"page {page_id} slot {slot} is empty")
        record = make_update(
            txn_id=txn.txn_id, system_id=self.client_id,
            page_id=page_id, slot=slot,
            redo=encode_op(PageOp.SET, payload),
            undo=encode_op(PageOp.SET, old),
            prev_lsn=txn.last_lsn,
        )
        entry.page.update_record(slot, payload)
        self._log_applied_update(txn, entry, record)

    def delete(self, txn: Transaction, page_id: int, slot: int) -> None:
        self._check_active(txn)
        self._lock(txn, record_lock(page_id, slot), LockMode.X)
        entry = self._require_cached(page_id, for_update=True)
        old = entry.page.read_record(slot)
        if old is None:
            raise ReproError(f"page {page_id} slot {slot} is empty")
        record = make_update(
            txn_id=txn.txn_id, system_id=self.client_id,
            page_id=page_id, slot=slot,
            redo=encode_op(PageOp.DELETE),
            undo=encode_op(PageOp.INSERT, old),
            prev_lsn=txn.last_lsn,
        )
        entry.page.delete_record(slot)
        self._log_applied_update(txn, entry, record)

    def read(self, txn: Transaction, page_id: int, slot: int,
             use_commit_lsn: bool = False,
             commit_lsn_service=None) -> Optional[bytes]:
        """Cursor-stability read, optionally via the Commit_LSN check."""
        self._check_active(txn)
        entry = self._require_cached(page_id, for_update=False)
        if use_commit_lsn and commit_lsn_service is not None:
            if commit_lsn_service.check(entry.page.page_lsn):
                return entry.page.read_record(slot)
        resource = record_lock(page_id, slot)
        held_before = self.server.glm.holds(txn.txn_id, resource)
        self._lock(txn, resource, LockMode.S)
        try:
            return entry.page.read_record(slot)
        finally:
            # Degree 2 releases the read lock immediately — but never a
            # lock the transaction held already for other reasons.
            if self.isolation == "cursor_stability" and not held_before:
                self.server.unlock(self.client_id, txn.txn_id, resource)

    # ------------------------------------------------------------------
    # page allocation (same Section 3.4 rule as SD)
    # ------------------------------------------------------------------
    def allocate_page(self, txn: Transaction,
                      page_type: PageType = PageType.DATA,
                      page_id: Optional[int] = None) -> int:
        self._check_active(txn)
        geometry = self.server.space_map
        chosen = page_id if page_id is not None else self._find_free_page()
        if chosen is None:
            raise ReproError("no free pages left")
        slot = geometry.slot_for(chosen)
        smp_entry = self._require_cached(slot.smp_page_id, for_update=True)
        if SpaceMap.read_allocated(smp_entry.page, slot.index):
            raise ReproError(f"page {chosen} is already allocated")
        smp_record = LogRecord(
            kind=RecordKind.SMP_UPDATE, txn_id=txn.txn_id,
            page_id=slot.smp_page_id, slot=0,
            redo=encode_op(PageOp.SMP_SET,
                           SpaceMap.encode_entry_update(slot.index, True)),
            undo=encode_op(PageOp.SMP_SET,
                           SpaceMap.encode_entry_update(slot.index, False)),
            prev_lsn=txn.last_lsn,
        )
        SpaceMap.write_allocated(smp_entry.page, slot.index, True)
        self._log_applied_update(txn, smp_entry, smp_record)
        fmt = make_format(
            txn_id=txn.txn_id, system_id=self.client_id,
            page_id=chosen, page_type=int(page_type), prev_lsn=txn.last_lsn,
        )
        # The SMP's LSN is the lower bound that makes read-free
        # reallocation safe (Section 3.4) — in CS exactly as in SD.
        self.log.append(fmt, page_lsn=smp_entry.page.page_lsn)
        txn.note_logged(fmt.lsn, 0, undoable=False)
        fresh = Page()
        fresh.format(chosen, page_type, page_lsn=fmt.lsn)
        self._evict_if_needed(exclude=chosen)
        self.cache[chosen] = _CachedPage(page=fresh, dirty=True,
                                         rec_lsn=fmt.lsn)
        self.server.note_new_page(self, chosen)
        self.stats.incr(PAGE_READS_AVOIDED)
        return chosen

    def deallocate_page(self, txn: Transaction, page_id: int) -> None:
        self._check_active(txn)
        slot = self.server.space_map.slot_for(page_id)
        entry = self._require_cached(page_id, for_update=True)
        if not entry.page.is_empty():
            raise ReproError(f"page {page_id} is not empty")
        dead_page_lsn = entry.page.page_lsn
        smp_entry = self._require_cached(slot.smp_page_id, for_update=True)
        if not SpaceMap.read_allocated(smp_entry.page, slot.index):
            raise ReproError(f"page {page_id} is not allocated")
        record = LogRecord(
            kind=RecordKind.SMP_UPDATE, txn_id=txn.txn_id,
            page_id=slot.smp_page_id, slot=0,
            redo=encode_op(PageOp.SMP_SET,
                           SpaceMap.encode_entry_update(slot.index, False)),
            undo=encode_op(PageOp.SMP_SET,
                           SpaceMap.encode_entry_update(slot.index, True)),
            prev_lsn=txn.last_lsn,
        )
        SpaceMap.write_allocated(smp_entry.page, slot.index, False)
        hint = max(smp_entry.page.page_lsn, dead_page_lsn)
        self._log_applied_update(txn, smp_entry, record, lsn_hint=hint)

    def _find_free_page(self) -> Optional[int]:
        geometry = self.server.space_map
        for smp_page_id in geometry.smp_page_ids():
            smp_entry = self._require_cached(smp_page_id, for_update=False)
            base = (smp_page_id - geometry.smp_start) * geometry.entries_per_page
            limit = min(geometry.entries_per_page,
                        geometry.n_data_pages - base)
            for index in range(limit):
                if not SpaceMap.read_allocated(smp_entry.page, index):
                    return geometry.data_start + base + index
        return None

    # ------------------------------------------------------------------
    # page-access protocol (shared with DbmsInstance, used by access
    # methods like the B-tree)
    # ------------------------------------------------------------------
    def fix_page(self, page_id: int, for_update: bool = False) -> Page:
        """Pin a page in the cache (fetching from the server on a miss).

        Client caches have no pin counts — virtual storage holds pages
        until eviction — so :meth:`unfix_page` is a no-op; the pair
        exists to satisfy the access-method page protocol.
        """
        return self._require_cached(page_id, for_update).page

    def unfix_page(self, page_id: int) -> None:
        """Counterpart of :meth:`fix_page`; nothing to release."""

    # ------------------------------------------------------------------
    # cache & shipping
    # ------------------------------------------------------------------
    def _require_cached(self, page_id: int, for_update: bool) -> _CachedPage:
        self._check_up()
        entry = self.cache.get(page_id)
        if entry is None or (for_update and
                             self.server._writer.get(page_id) != self.client_id):
            page = self.server.fetch_page(self, page_id, for_update)
            if entry is not None and entry.dirty:
                # fetch_page recalls our own dirty copy only when someone
                # else held it, which cannot be us; keep our copy.
                pass
            entry = self.cache.get(page_id)
            if entry is None or not entry.dirty:
                self._evict_if_needed(exclude=page_id)
                entry = _CachedPage(page=page)
                self.cache[page_id] = entry
        self._touch(page_id)
        return entry

    def _touch(self, page_id: int) -> None:
        """Move a page to the LRU tail (dicts keep insertion order)."""
        entry = self.cache.pop(page_id, None)
        if entry is not None:
            self.cache[page_id] = entry

    def _evict_if_needed(self, exclude: int) -> None:
        """Make room under a bounded cache, shipping dirty victims back."""
        if not self.cache_capacity:
            return
        while len(self.cache) >= self.cache_capacity:
            victim = next(
                (pid for pid in self.cache if pid != exclude), None
            )
            if victim is None:
                return
            self.send_page_back(victim)

    def _note_dirty(self, entry: _CachedPage, lsn: Lsn) -> None:
        if not entry.dirty:
            entry.dirty = True
            entry.rec_lsn = lsn

    def _log_applied_update(self, txn: Transaction, entry: _CachedPage,
                            record: LogRecord,
                            lsn_hint: Optional[Lsn] = None) -> None:
        if self.injector.enabled:
            # Mid-operation crash point (see DbmsInstance._log_update):
            # the applied cache mutation is volatile and dies with the
            # client; the record below never reaches the client log.
            self.injector.fire(fp.INSTANCE_UPDATE, system=self.client_id,
                               page=record.page_id, txn=txn.txn_id)
        page_lsn_prev = entry.page.page_lsn
        hint = page_lsn_prev if lsn_hint is None else lsn_hint
        self.log.append(record, page_lsn=hint)
        stamp_page_lsn(entry.page, record.lsn)
        self._note_dirty(entry, record.lsn)
        txn.note_logged(record.lsn, 0, undoable=record.is_undoable())
        if self.tracer.enabled:
            self.tracer.emit(
                ev.PAGE_UPDATE, system=self.client_id,
                page=record.page_id, slot=record.slot, txn=txn.txn_id,
                lsn=int(record.lsn), page_lsn_prev=int(page_lsn_prev),
                kind=record.kind.name,
            )

    def send_page_back(self, page_id: int) -> None:
        """Ship a dirty page (and all buffered log records) to the
        server; the cached copy becomes clean."""
        self._check_up()
        entry = self.cache.get(page_id)
        if entry is None:
            return
        if entry.dirty:
            self.server.receive_dirty_page(self, entry.page.copy(),
                                           entry.rec_lsn)
            entry.dirty = False
            entry.rec_lsn = NULL_LSN
        del self.cache[page_id]
        self.server.relinquish_page(self.client_id, page_id)

    def flush_all(self) -> None:
        """Send every dirty page back (quiesce)."""
        for page_id in sorted(self.cache):
            if self.cache[page_id].dirty:
                self.send_page_back(page_id)

    def invalidate(self, page_id: int) -> None:
        """Server callback: drop a (clean) cached copy."""
        entry = self.cache.pop(page_id, None)
        if entry is not None and entry.dirty:
            raise ReproError(
                f"client {self.client_id} invalidated dirty page {page_id}"
            )

    def checkpoint(self) -> None:
        """Client checkpoint (Section 3.1): report the dirty-page table
        and active transactions to the server."""
        self._check_up()
        dirty = {
            page_id: entry.rec_lsn
            for page_id, entry in self.cache.items() if entry.dirty
        }
        txns = {
            txn.txn_id: txn.last_lsn
            for txn in self.txns.active() if txn.is_update_transaction()
        }
        self.server.client_checkpoint(self, dirty, txns)

    # ------------------------------------------------------------------
    def _lock(self, txn: Transaction, resource, mode: LockMode) -> None:
        status = self.server.lock(self.client_id, txn.txn_id, resource, mode)
        if status is LockStatus.WAITING:
            raise LockWouldBlock(txn.txn_id, resource)

    def crash(self) -> None:
        """Client failure: cache, buffered records, transactions gone."""
        self.crashed = True
        self.cache.clear()
        self.txns.crash()
        self.log.crash()
        self._pending_commits.clear()

    def rejoin(self) -> None:
        """Bring the client machine back after the server recovered it."""
        if not self.crashed:
            raise ReproError(f"client {self.client_id} is not down")
        self.crashed = False

    def _check_up(self) -> None:
        if self.crashed:
            raise ReproError(f"client {self.client_id} is down")

    def _check_active(self, txn: Transaction) -> None:
        self._check_up()
        if txn.state != TxnState.ACTIVE:
            raise ReproError(
                f"txn {txn.txn_id} is {txn.state.value}, not active"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CsClient(id={self.client_id}, cached={len(self.cache)}, "
            f"crashed={self.crashed})"
        )
