"""The client-server (CS) architecture (Sections 1.3, 1.6, 3.1).

The server manages the disk version of the database, does global
locking across clients, and owns the **single log**.  Clients cache
pages, perform updates locally, assign LSNs locally with the same USN
rule as SD systems (no round trip to the server), and buffer log
records in virtual storage, shipping them to the server when a dirty
page goes back or a transaction commits — whichever happens first.

Client failure is recovered *by the server* from its single log using
the client identity carried in every log record plus the shipped
RecLSN -> RecAddr mapping; server failure is handled like an SD-complex
failure.
"""

from repro.cs.client import CsClient
from repro.cs.server import CsServer, SERVER_ID
from repro.cs.system import CsSystem

__all__ = ["CsClient", "CsServer", "CsSystem", "SERVER_ID"]
