"""A complete client-server deployment: one server, many clients."""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.stats import StatsRegistry
from repro.cs.client import CsClient
from repro.cs.server import SERVER_ID, ClientRecoverySummary, CsServer
from repro.faults.injector import NULL_INJECTOR, NullFaultInjector
from repro.net.network import Network
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.recovery.commit_lsn import CommitLsnService


class CsSystem:
    """Convenience wrapper wiring server, clients, network and the
    complex-wide Commit_LSN service together."""

    def __init__(
        self,
        n_data_pages: int = 2048,
        piggyback_enabled: bool = True,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
        lock_shards: int = 1,
        redo_parallelism: int = 1,
        slab: bool = True,
        restart_mode: str = "eager",
    ) -> None:
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.network = Network(stats=self.stats,
                               piggyback_enabled=piggyback_enabled,
                               tracer=self.tracer,
                               injector=self.injector)
        self.server = CsServer(n_data_pages=n_data_pages, stats=self.stats,
                               network=self.network, tracer=self.tracer,
                               injector=self.injector,
                               lock_shards=lock_shards,
                               redo_parallelism=redo_parallelism,
                               slab=slab,
                               restart_mode=restart_mode)
        self.clients: Dict[int, CsClient] = {}
        self.commit_lsn = CommitLsnService(stats=self.stats,
                                           tracer=self.tracer)

    def add_client(self, client_id: int, **kwargs) -> CsClient:
        client = CsClient(client_id, self.server, **kwargs)
        self.clients[client_id] = client
        self.commit_lsn.register(client)
        return client

    # ------------------------------------------------------------------
    # failure orchestration
    # ------------------------------------------------------------------
    def crash_client(self, client_id: int) -> None:
        self.clients[client_id].crash()

    def recover_client(self, client_id: int) -> ClientRecoverySummary:
        """Server-side recovery of a failed client, then let the client
        machine rejoin with a cold cache."""
        summary = self.server.recover_client(client_id)
        self.clients[client_id].rejoin()
        return summary

    def crash_server(self) -> None:
        """Server failure takes every client down with it."""
        self.server.crash()

    def restart_server(self):
        """Restart the whole deployment after a server failure
        (handled like an SD-complex failure, Section 3.1)."""
        summary = self.server.restart()
        for client in self.clients.values():
            if client.crashed:
                client.rejoin()
        return summary

    # ------------------------------------------------------------------
    def broadcast_max_lsns(self) -> None:
        """Periodic Local_Max_LSN exchange (Section 3.5)."""
        self.network.broadcast_max_lsns()

    def quiesce(self) -> None:
        """Ship every dirty page to the server and flush it to disk.

        Also drains any injected-delay messages still parked on the
        fabric: a quiesced system must have no in-flight traffic, or a
        later run would observe deliveries this one never completed.
        """
        with self.tracer.span(ev.SPAN_QUIESCE, system=SERVER_ID):
            self.network.drain_parked()
            for client in self.clients.values():
                if not client.crashed:
                    client.flush_all()
            self.server.pool.flush_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CsSystem(clients={sorted(self.clients)})"
