"""The CS server: disk owner, global locker, single log, client recovery.

The server appends client log records to its log *as they are*
(Section 3.1) — so successive server-log records do **not** always have
increasing LSNs (records from different clients interleave), which the
paper notes is harmless: each client's own stream is increasing, and
per-page monotonicity holds complex-wide.

Per-client batch bookkeeping implements the RecLSN -> RecAddr mapping
of Section 3.2.2: every shipped batch is remembered as (first LSN,
last LSN, server-log offset), and a client RecLSN maps conservatively
to the start of the batch that contains it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Set, Tuple

from repro.buffer.buffer_pool import BufferPool
from repro.common.config import NULL_LSN, PAGE_SIZE
from repro.common.errors import (
    DegradedModeError,
    FaultInjectedError,
    ProtocolError,
    ReproError,
)
from repro.common.lsn import Lsn
from repro.common.stats import DEGRADED_ENTRIES, DEGRADED_REJECTIONS, StatsRegistry
from repro.faults import points as fp
from repro.faults.injector import FAIL, NULL_INJECTOR, NullFaultInjector
from repro.locking.lock_manager import LockManager, LockMode, LockStatus
from repro.net.network import Network
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.recovery.apply import apply_payload, apply_redo
from repro.storage.disk import SharedDisk
from repro.storage.page import Page, PageType
from repro.storage.space_map import SpaceMap
from repro.txn.manager import _SYSTEM_STRIDE
from repro.wal.log_manager import LogManager
from repro.wal.records import (
    CheckpointData,
    LogRecord,
    RecordKind,
    make_clr,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cs.client import CsClient
    from repro.recovery.instant import InstantRecoveryManager

# The server's system id in log records and on the network fabric.
SERVER_ID = 0

_COMMITTED = 1
_ACTIVE = 0


@dataclass
class _Batch:
    """One shipped batch of client log records in the server log."""

    first_lsn: Lsn
    last_lsn: Lsn
    offset: int


@dataclass
class ClientRecoverySummary:
    """What recovering a failed client involved (experiment E8)."""

    records_scanned: int = 0
    records_redone: int = 0
    redo_skipped_buffer_hit: int = 0
    redo_skipped_by_lsn: int = 0
    loser_transactions: int = 0
    clrs_written: int = 0


class CsServer:
    """The server of Figure 1's client-server sibling."""

    def __init__(
        self,
        n_data_pages: int = 2048,
        data_start: int = 64,
        smp_start: int = 1,
        stats: Optional[StatsRegistry] = None,
        network: Optional[Network] = None,
        buffer_capacity: int = 256,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
        lock_shards: int = 1,
        redo_parallelism: int = 1,
        slab: bool = True,
        restart_mode: str = "eager",
    ) -> None:
        if restart_mode not in ("eager", "instant"):
            raise ValueError(
                f"restart_mode must be 'eager' or 'instant', "
                f"got {restart_mode!r}"
            )
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        if self.injector.enabled:
            self.injector.attach(stats=self.stats, tracer=self.tracer)
        self.network = network if network is not None else Network(
            stats=self.stats, tracer=self.tracer, injector=self.injector
        )
        self.disk = SharedDisk(capacity=data_start + n_data_pages + 64,
                               stats=self.stats, tracer=self.tracer,
                               injector=self.injector, slab=slab)
        self.log = LogManager(SERVER_ID, stats=self.stats,
                              tracer=self.tracer, injector=self.injector)
        self.pool = BufferPool(self.disk, self.log, capacity=buffer_capacity,
                               tracer=self.tracer, injector=self.injector)
        self.lock_shards = lock_shards
        self.redo_parallelism = redo_parallelism
        #: ``"eager"`` (classic, default) or ``"instant"`` — see
        #: :mod:`repro.recovery.instant`; the classic path is
        #: byte-identical to pre-instant behaviour.
        self.restart_mode = restart_mode
        #: The active instant-restart manager, if a restart is lazily
        #: recovering pages (None on the classic path).
        self.instant: Optional["InstantRecoveryManager"] = None
        self.glm = self._build_glm()
        self.space_map = SpaceMap(smp_start=smp_start, data_start=data_start,
                                  n_data_pages=n_data_pages)
        self.network.register(SERVER_ID, self.log)
        self.system_id = SERVER_ID  # duck-type for the generic ARIES passes
        self.crashed = False
        # Read-only degraded mode after a log-device failure: fetches
        # still served, everything that must append or force is
        # rejected until restart.
        self.degraded = False
        # Coherency: which client may hold each page dirty; who caches it.
        self._writer: Dict[int, int] = {}
        self._readers: Dict[int, Set[int]] = {}
        self._clients: Dict[int, "CsClient"] = {}
        # RecLSN -> RecAddr machinery.
        self._batches: Dict[int, List[_Batch]] = {}
        # Global transaction table, maintained from appended records.
        self._txn_table: Dict[int, Tuple[Lsn, int]] = {}
        # Per-client latest checkpoint: (server log offset, data).
        self._client_checkpoints: Dict[int, Tuple[int, CheckpointData]] = {}
        self._initialize_database()

    def _initialize_database(self) -> None:
        for smp_page_id in self.space_map.smp_page_ids():
            page = Page()
            page.format(smp_page_id, PageType.SPACE_MAP)
            self.disk.write_page(page)

    def _build_glm(self):
        """A fresh lock service, honouring the shard configuration
        (restart recreates it — retained-lock release is explicit)."""
        if self.lock_shards > 1:
            from repro.cluster.glm import PartitionedLockManager

            return PartitionedLockManager(
                self.lock_shards, stats=self.stats, tracer=self.tracer,
                injector=self.injector)
        return LockManager(stats=self.stats, tracer=self.tracer)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def attach_client(self, client: "CsClient") -> None:
        if client.client_id in self._clients or client.client_id == SERVER_ID:
            raise ReproError(f"bad client id {client.client_id}")
        self._clients[client.client_id] = client
        self.network.register(client.client_id, client.log)

    # ------------------------------------------------------------------
    # locking service
    # ------------------------------------------------------------------
    def lock(self, client_id: int, txn_id: int, resource: Hashable,
             mode: LockMode) -> LockStatus:
        self._check_up()
        self.network.message(client_id, SERVER_ID, "lock_request")
        status = self.glm.acquire(txn_id, resource, mode)
        self.network.message(SERVER_ID, client_id, "lock_reply")
        return status

    def unlock(self, client_id: int, txn_id: int, resource: Hashable) -> None:
        self.network.message(client_id, SERVER_ID, "unlock")
        self.glm.release(txn_id, resource)

    def release_txn_locks(self, txn_id: int) -> None:
        self.glm.release_all(txn_id)

    # ------------------------------------------------------------------
    # page service (callback coherency)
    # ------------------------------------------------------------------
    def fetch_page(self, client: "CsClient", page_id: int,
                   for_update: bool) -> Page:
        """Give a client a copy of a page, recalling it first if another
        client holds a dirty version."""
        self._check_up()
        self.network.message(client.client_id, SERVER_ID, "page_request")
        holder_id = self._writer.get(page_id)
        if holder_id is not None and holder_id != client.client_id:
            holder = self._clients[holder_id]
            if holder.crashed:
                raise ProtocolError(
                    f"page {page_id} held by crashed client {holder_id}; "
                    f"recover it first"
                )
            self._recall_page(holder, page_id)
        if for_update:
            for reader_id in sorted(self._readers.get(page_id, set())):
                if reader_id != client.client_id:
                    self._clients[reader_id].invalidate(page_id)
                    self.network.message(SERVER_ID, reader_id, "invalidate")
            self._writer[page_id] = client.client_id
            self._readers[page_id] = {client.client_id}
        else:
            self._readers.setdefault(page_id, set()).add(client.client_id)
        page = self.pool.fix(page_id)
        try:
            image = page.copy()
        finally:
            self.pool.unfix(page_id)
        self.network.message(SERVER_ID, client.client_id, "page_reply",
                             nbytes=PAGE_SIZE)
        return image

    def _recall_page(self, holder: "CsClient", page_id: int) -> None:
        """Call back a dirty page (and, per protocol, the covering log
        records) from the client currently holding it."""
        self.network.message(SERVER_ID, holder.client_id, "page_recall")
        holder.send_page_back(page_id)
        self._writer.pop(page_id, None)

    def note_new_page(self, client: "CsClient", page_id: int) -> None:
        """A client formatted a fresh page without fetching it.

        Stale copies of the page's previous (deallocated) life cached at
        other clients are purged, dirty or not — the format record
        supersedes them on every recovery path.
        """
        for other_id, other in self._clients.items():
            if other_id != client.client_id and page_id in other.cache:
                other.cache.pop(page_id)
                self.network.message(SERVER_ID, other_id, "invalidate")
        self._writer[page_id] = client.client_id
        self._readers[page_id] = {client.client_id}

    def relinquish_page(self, client_id: int, page_id: int) -> None:
        """Client no longer caches the page (eviction of a clean copy)."""
        self._readers.get(page_id, set()).discard(client_id)
        if self._writer.get(page_id) == client_id:
            self._writer.pop(page_id, None)

    # ------------------------------------------------------------------
    # log and page receipt
    # ------------------------------------------------------------------
    def receive_log_records(self, client: "CsClient") -> Optional[int]:
        """Ship the client's buffered records into the server log.

        Returns the server-log offset of the appended batch (None when
        the client had nothing to ship).
        """
        self._check_writable()
        data = client.log.ship()
        if not data:
            return None
        if self.injector.enabled:
            # Fired before the batch reaches the server log, attributed
            # to the shipping client: a kill here loses the batch with
            # the client's volatile state.
            self.injector.fire(fp.CS_SHIP, system=client.client_id,
                               nbytes=len(data))
        records = [rec for _, rec in LogRecord.parse_stream(data)]
        addr = self.log.append_raw(data)
        self.network.message(client.client_id, SERVER_ID, "log_ship",
                             nbytes=len(data))
        self._batches.setdefault(client.client_id, []).append(
            _Batch(first_lsn=records[0].lsn, last_lsn=records[-1].lsn,
                   offset=addr.offset)
        )
        for record in records:
            self._track_txn(record)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.CS_SHIP, system=SERVER_ID,
                client=client.client_id, nbytes=len(data),
                offset=addr.offset,
            )
        return addr.offset

    def _track_txn(self, record: LogRecord) -> None:
        if not record.txn_id:
            return
        if record.kind == RecordKind.END:
            self._txn_table.pop(record.txn_id, None)
        elif record.kind == RecordKind.COMMIT:
            self._txn_table[record.txn_id] = (record.lsn, _COMMITTED)
        else:
            state = self._txn_table.get(record.txn_id, (0, _ACTIVE))[1]
            self._txn_table[record.txn_id] = (record.lsn, state)

    def map_rec_lsn(self, client_id: int, rec_lsn: Lsn) -> int:
        """RecLSN -> RecAddr: offset of the batch containing ``rec_lsn``.

        Conservative: the batch start bounds the record's address from
        below, which is all a redo starting point needs.
        """
        for batch in self._batches.get(client_id, []):
            if batch.first_lsn <= rec_lsn <= batch.last_lsn:
                return batch.offset
        return 0

    def receive_dirty_page(self, client: "CsClient", page: Page,
                           rec_lsn: Lsn) -> None:
        """A client sends a dirty page back (with its RecLSN).

        Protocol rule (Section 3.3): the client's buffered log records
        are shipped first, so the server log covers every update on the
        received page before the page can reach disk (WAL).
        """
        self._check_up()
        self.receive_log_records(client)
        self.network.message(client.client_id, SERVER_ID, "dirty_page",
                             nbytes=PAGE_SIZE)
        rec_addr = self.map_rec_lsn(client.client_id, rec_lsn)
        self.pool.receive_dirty(page, rec_lsn, rec_addr,
                                last_update_end=self.log.end_offset)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.CS_PAGE_BACK, system=SERVER_ID,
                client=client.client_id, page=page.page_id,
                rec_lsn=int(rec_lsn),
            )

    def commit_point(self, client: "CsClient", txn_id: int) -> None:
        """Client commit: ship records, force the single log, ack.

        A log-device failure at the force degrades the server to
        read-only instead of taking the whole complex down: the commit
        is *not* acknowledged (the client sees
        :class:`DegradedModeError` and its locks stay held), but every
        client can keep reading committed data.
        """
        if self.tracer.enabled:
            with self.tracer.span(
                ev.SPAN_COMMIT_POINT, system=SERVER_ID,
                client=client.client_id, txn=txn_id,
            ):
                self._commit_point(client, txn_id)
        else:
            self._commit_point(client, txn_id)

    def _commit_point(self, client: "CsClient", txn_id: int) -> None:
        self._check_writable()
        if self.injector.enabled:
            self.injector.fire(fp.CS_COMMIT, system=client.client_id,
                               txn=txn_id)
        self.receive_log_records(client)
        try:
            self.log.force()
        except FaultInjectedError as exc:
            if exc.action != FAIL:
                raise
            self._enter_degraded("log device failure")
            raise DegradedModeError(
                "server: commit not durable, log device failed"
            ) from exc
        self.release_txn_locks(txn_id)
        self.network.message(SERVER_ID, client.client_id, "commit_ack")
        if self.tracer.enabled:
            self.tracer.emit(
                ev.CS_COMMIT_POINT, system=SERVER_ID,
                client=client.client_id, txn=txn_id,
            )

    def client_checkpoint(self, client: "CsClient",
                          dirty_pages: Dict[int, Lsn],
                          transactions: Dict[int, Lsn]) -> None:
        """Record a client checkpoint in the server log (Section 3.1:
        "Each client periodically takes a checkpoint.  The server keeps
        track of the most recent checkpoint records of all the
        clients.")"""
        self._check_up()
        self.receive_log_records(client)
        data = CheckpointData(
            dirty_pages={
                page_id: (rec_lsn, self.map_rec_lsn(client.client_id, rec_lsn))
                for page_id, rec_lsn in dirty_pages.items()
            },
            transactions={
                txn_id: (last_lsn, _ACTIVE)
                for txn_id, last_lsn in transactions.items()
            },
        )
        record = LogRecord(kind=RecordKind.END_CHECKPOINT,
                           system_id=client.client_id,
                           extra=data.to_bytes())
        # The checkpoint record is the server's own bookkeeping: append
        # through the normal path so it gets a server LSN.
        addr = self.log.append(record)
        self.log.force()
        self._client_checkpoints[client.client_id] = (addr.offset, data)

    # ------------------------------------------------------------------
    # client failure recovery (Section 3.1)
    # ------------------------------------------------------------------
    def recover_client(self, client_id: int) -> ClientRecoverySummary:
        """Recover a failed client from the server's single log.

        Analysis filters the log by the client's identity (carried in
        every record); redo applies only updates missing from the
        server's buffer/disk version (page_LSN test); undo rolls back
        the client's loser transactions with CLRs.
        """
        self._check_up()
        client = self._clients[client_id]
        if not client.crashed:
            raise ReproError(f"client {client_id} is not down")
        summary = ClientRecoverySummary()
        with self.tracer.span(ev.SPAN_RECOVERY, system=SERVER_ID,
                              mode="cs-client", client=client_id):
            if self.tracer.enabled:
                self.tracer.emit(ev.RECOVERY_BEGIN, system=SERVER_ID,
                                 mode="cs-client", client=client_id)
            with self.tracer.span(ev.SPAN_ANALYSIS, system=SERVER_ID):
                dpt, losers, index = self._client_analysis(
                    client_id, summary)
            summary.loser_transactions = len(losers)
            with self.tracer.span(ev.SPAN_REDO, system=SERVER_ID):
                self._client_redo(dpt, summary)
            with self.tracer.span(ev.SPAN_UNDO, system=SERVER_ID):
                self._client_undo(losers, index, summary)
            self.log.force()
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.RECOVERY_END, system=SERVER_ID,
                    redone=summary.records_redone,
                    skipped=summary.redo_skipped_by_lsn,
                    losers=summary.loser_transactions,
                    clrs=summary.clrs_written,
                )
        # Retained resources are released only now.
        for txn_id in list(self._owned_txns(client_id)):
            self.glm.release_all(txn_id)
        for page_id in [p for p, w in self._writer.items() if w == client_id]:
            del self._writer[page_id]
        for readers in self._readers.values():
            readers.discard(client_id)
        self._client_checkpoints.pop(client_id, None)
        return summary

    def _owned_txns(self, client_id: int) -> Set[int]:
        owners: Set[int] = set()
        for owner in self.glm.owners():
            if isinstance(owner, int) and owner // _SYSTEM_STRIDE == client_id:
                owners.add(owner)
        for txn_id in self._txn_table:
            if txn_id // _SYSTEM_STRIDE == client_id:
                owners.add(txn_id)
        return owners

    def _client_analysis(self, client_id: int, summary: ClientRecoverySummary):
        checkpoint = self._client_checkpoints.get(client_id)
        dpt: Dict[int, Tuple[Lsn, int]] = {}
        txn_table: Dict[int, Tuple[Lsn, int]] = {}
        start = 0
        if checkpoint is not None:
            start, data = checkpoint
            dpt.update(data.dirty_pages)
            txn_table.update(data.transactions)
        scan_start = min(
            [addr for _, addr in dpt.values()] + [start]
        ) if dpt else start
        index: Dict[Lsn, LogRecord] = {}
        for addr, record in self.log.scan(from_offset=scan_start):
            mine = (record.system_id == client_id or
                    (record.txn_id and
                     record.txn_id // _SYSTEM_STRIDE == client_id))
            if not mine:
                continue
            summary.records_scanned += 1
            if record.kind == RecordKind.END_CHECKPOINT:
                continue
            if record.txn_id:
                if record.kind == RecordKind.END:
                    txn_table.pop(record.txn_id, None)
                elif record.kind == RecordKind.COMMIT:
                    txn_table[record.txn_id] = (record.lsn, _COMMITTED)
                else:
                    state = txn_table.get(record.txn_id, (0, _ACTIVE))[1]
                    txn_table[record.txn_id] = (record.lsn, state)
                index[record.lsn] = record
            if record.is_page_oriented():
                dpt.setdefault(record.page_id, (record.lsn, addr.offset))
        losers = {
            txn_id: last_lsn
            for txn_id, (last_lsn, state) in txn_table.items()
            if state != _COMMITTED and txn_id // _SYSTEM_STRIDE == client_id
        }
        # Loser chains can reach back before the analysis scan start
        # (records logged before the client's checkpoint): index every
        # loser record over the whole log so undo can follow them.
        if losers:
            for _, record in self.log.scan():
                if record.txn_id in losers:
                    index[record.lsn] = record
        return dpt, losers, index

    def _client_redo(self, dpt: Dict[int, Tuple[Lsn, int]],
                     summary: ClientRecoverySummary) -> None:
        if not dpt:
            return
        redo_start = min(rec_addr for _, rec_addr in dpt.values())
        for addr, record in self.log.scan(from_offset=redo_start):
            if not record.is_page_oriented():
                continue
            entry = dpt.get(record.page_id)
            if entry is None or addr.offset < entry[1]:
                continue
            buffered = self.pool.contains(record.page_id)
            page = self.pool.fix(record.page_id)
            try:
                if record.lsn > page.page_lsn:
                    page_lsn_prev = page.page_lsn
                    apply_redo(page, record)
                    self.pool.note_update(record.page_id, record.lsn,
                                          addr.offset, self.log.end_offset)
                    summary.records_redone += 1
                    if self.tracer.enabled:
                        self.tracer.emit(
                            ev.RECOVERY_REDO, system=SERVER_ID,
                            page=record.page_id, lsn=int(record.lsn),
                            page_lsn_prev=int(page_lsn_prev),
                        )
                elif buffered:
                    summary.redo_skipped_buffer_hit += 1
                else:
                    summary.redo_skipped_by_lsn += 1
                    if self.tracer.enabled:
                        self.tracer.emit(
                            ev.RECOVERY_SKIP, system=SERVER_ID,
                            page=record.page_id, lsn=int(record.lsn),
                            page_lsn=int(page.page_lsn),
                        )
            finally:
                self.pool.unfix(record.page_id)

    def _client_undo(self, losers: Dict[int, Lsn],
                     index: Dict[Lsn, LogRecord],
                     summary: ClientRecoverySummary) -> None:
        next_undo = dict(losers)
        last_lsn = dict(losers)
        while next_undo:
            txn_id = max(next_undo, key=lambda t: next_undo[t])
            lsn = next_undo[txn_id]
            record = index.get(lsn)
            if record is None or lsn == NULL_LSN:
                self._end_txn(txn_id, last_lsn[txn_id])
                del next_undo[txn_id]
                continue
            if record.kind == RecordKind.CLR:
                follow = record.undo_next_lsn
            elif record.is_undoable():
                # Under record locking the loser's page may live,
                # newer, in a *live* client's cache (it was recalled
                # there with the loser's uncommitted bytes on it).
                # Undoing against the server's stale copy would assign
                # the CLR an LSN that can collide with that client's
                # unshipped records; recalling first ships those
                # records (raising the server's Local_Max_LSN past
                # them) and hands the server the current version.  A
                # *crashed* holder is safe as-is: its records either
                # shipped (already absorbed) or died with it.
                holder_id = self._writer.get(record.page_id)
                if holder_id is not None and holder_id in self._clients:
                    holder = self._clients[holder_id]
                    if not holder.crashed:
                        self._recall_page(holder, record.page_id)
                page = self.pool.fix(record.page_id)
                try:
                    clr = make_clr(
                        txn_id=txn_id, system_id=SERVER_ID,
                        page_id=record.page_id, slot=record.slot,
                        redo=record.undo, undo_next_lsn=record.prev_lsn,
                        prev_lsn=last_lsn[txn_id],
                    )
                    page_lsn_prev = page.page_lsn
                    addr = self.log.append(clr, page_lsn=page_lsn_prev)
                    apply_payload(page, record.slot, record.undo, clr.lsn)
                    self.pool.note_update(record.page_id, clr.lsn,
                                          addr.offset, self.log.end_offset)
                    index[clr.lsn] = clr
                    last_lsn[txn_id] = clr.lsn
                    summary.clrs_written += 1
                    if self.tracer.enabled:
                        self.tracer.emit(
                            ev.RECOVERY_CLR, system=SERVER_ID,
                            page=record.page_id, txn=txn_id,
                            lsn=int(clr.lsn),
                            page_lsn_prev=int(page_lsn_prev),
                        )
                finally:
                    self.pool.unfix(record.page_id)
                follow = record.prev_lsn
            else:
                follow = record.prev_lsn
            if follow == NULL_LSN:
                self._end_txn(txn_id, last_lsn[txn_id])
                del next_undo[txn_id]
            else:
                next_undo[txn_id] = follow

    def _end_txn(self, txn_id: int, prev_lsn: Lsn) -> None:
        end = LogRecord(kind=RecordKind.END, txn_id=txn_id, prev_lsn=prev_lsn)
        self.log.append(end)
        self._txn_table.pop(txn_id, None)

    # ------------------------------------------------------------------
    # server checkpoint & server failure (handled like SD-complex failure)
    # ------------------------------------------------------------------
    def take_checkpoint(self) -> int:
        """Server checkpoint covering its pool and the global txn table."""
        self._check_up()
        begin = LogRecord(kind=RecordKind.BEGIN_CHECKPOINT)
        begin_addr = self.log.append(begin)
        data = CheckpointData(
            dirty_pages=dict(self.pool.dirty_page_table()),
            transactions={
                txn_id: entry
                for txn_id, entry in self._txn_table.items()
                if entry[1] != _COMMITTED
            },
        )
        end = LogRecord(kind=RecordKind.END_CHECKPOINT, extra=data.to_bytes())
        self.log.append(end)
        self.log.force()
        self.log.master_record_offset = begin_addr.offset
        return begin_addr.offset

    def crash(self) -> None:
        """Server failure takes the complex down: every client's cached
        state is unusable without the server, so all clients fail too."""
        if self.degraded:
            self.degraded = False
            if self.tracer.enabled:
                self.tracer.emit(ev.DEGRADED_EXIT, system=SERVER_ID)
        self.crashed = True
        self.pool.crash()
        self.log.crash()
        self._writer.clear()
        self._readers.clear()
        self._batches.clear()
        self._txn_table.clear()
        self._client_checkpoints.clear()
        for client_id in sorted(self._clients):
            client = self._clients[client_id]
            if not client.crashed:
                client.crash()

    def restart(self):
        """Restart after server failure: ARIES over the single log.

        Reuses the generic restart passes — the server log plays the
        role of an SD instance's local log, with records from *all*
        clients (redo's page_LSN test handles the interleaving).
        """
        from repro.recovery.aries import restart_recovery

        if not self.crashed:
            raise ReproError("server is not down")
        self.crashed = False
        # system_id attribute satisfies restart_recovery's duck type.
        self.system_id = SERVER_ID
        with self.tracer.span(ev.SPAN_RESTART, system=SERVER_ID,
                              target="server"):
            if self.restart_mode == "instant":
                summary = self._instant_restart()
            else:
                summary = restart_recovery(
                    self, redo_parallelism=self.redo_parallelism)
            self.pool.flush_all()
            self.glm = self._build_glm()
        return summary

    def _instant_restart(self):
        """Instant server restart: analysis + eager loser undo over the
        single server log, then open — each page's redo chain applies
        on its first fix through the pool's ``recovery_intercept``
        (:mod:`repro.recovery.instant`)."""
        from repro.cluster.redo import collect_local_redo
        from repro.recovery.instant import InstantRecoveryManager

        manager = InstantRecoveryManager(
            self, mode="cs", stats=self.stats, injector=self.injector,
            on_drained=self._instant_drained,
        )
        self.instant = manager
        # Install the intercept before undo: the undo pass reaches
        # loser pages through the plain pool fixer, and the intercept
        # applies a pending page's chain before the frame fills.
        self.pool.recovery_intercept = self._instant_intercept
        with self.tracer.span(ev.SPAN_RECOVERY, system=SERVER_ID,
                              mode="instant"):
            manager.analyze()
            manager.index_chains(collect_local_redo(
                self.log, manager.dpt, manager.summary.redo_scan_start))
            summary = manager.open()
        return summary

    def _instant_intercept(self, page_id: int) -> None:
        manager = self.instant
        if manager is not None:
            manager.recover_page(page_id)

    def _instant_drained(self, manager) -> None:
        if self.instant is manager:
            self.instant = None
            self.pool.recovery_intercept = None

    def instant_drain(self) -> int:
        """Run the active manager's sweeper to completion; returns the
        number of pages recovered (0 when none is active)."""
        if self.instant is None:
            return 0
        return self.instant.drain()

    # ------------------------------------------------------------------
    def _check_up(self) -> None:
        if self.crashed:
            raise ReproError("server is down")

    def _check_writable(self) -> None:
        """Reject log-appending work while the server runs degraded."""
        self._check_up()
        if self.degraded:
            self.stats.incr(DEGRADED_REJECTIONS)
            raise DegradedModeError("server is read-only (degraded)")

    def _enter_degraded(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.stats.incr(DEGRADED_ENTRIES)
        if self.tracer.enabled:
            self.tracer.emit(ev.DEGRADED_ENTER, system=SERVER_ID,
                             reason=reason)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CsServer(clients={sorted(self._clients)}, "
            f"log_bytes={self.log.end_offset})"
        )
