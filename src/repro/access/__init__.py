"""Access methods built on the multi-system engine.

The B-tree here is the structure behind the paper's index-page
reallocation discussion (Sections 2-P3, 3.4, citing ARIES/KVL and
ARIES/IM): "An index page is deallocated when there are no keys left in
the page and is then reallocated during a subsequent page split
operation.  During reallocation, the page is not read from disk."

All structural mutations go through the engine's logged record
operations, so index updates are recovered by the same ARIES machinery
as data updates — no special index recovery code.
"""

from repro.access.btree import BTree
from repro.access.table import SegmentedTable

__all__ = ["BTree", "SegmentedTable"]
