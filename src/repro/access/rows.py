"""Typed row codecs: schemas over record payloads.

The engine stores opaque byte payloads; applications want columns.
:class:`RowCodec` packs/unpacks fixed-order column tuples with a small
self-describing binary format, so examples and downstream users don't
hand-roll struct calls.  Column types:

* ``"i"`` — signed 64-bit integer
* ``"f"`` — float64
* ``"s"`` — UTF-8 string (length-prefixed)
* ``"b"`` — raw bytes (length-prefixed)
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_LEN = struct.Struct("<H")

_VALID_TYPES = frozenset("ifsb")


class RowCodec:
    """Pack and unpack rows of a fixed schema."""

    def __init__(self, schema: Sequence[Tuple[str, str]]) -> None:
        """``schema`` is a sequence of (column_name, type_char)."""
        if not schema:
            raise ValueError("schema needs at least one column")
        for name, type_char in schema:
            if type_char not in _VALID_TYPES:
                raise ValueError(
                    f"column {name!r}: unknown type {type_char!r}"
                )
        self.schema = list(schema)
        self.columns = [name for name, _ in schema]

    # ------------------------------------------------------------------
    def pack(self, *values: Any) -> bytes:
        """Serialize one row (positional values matching the schema)."""
        if len(values) != len(self.schema):
            raise ValueError(
                f"expected {len(self.schema)} values, got {len(values)}"
            )
        parts: List[bytes] = []
        for (name, type_char), value in zip(self.schema, values):
            if type_char == "i":
                parts.append(_INT.pack(value))
            elif type_char == "f":
                parts.append(_FLOAT.pack(value))
            elif type_char == "s":
                raw = value.encode("utf-8")
                parts.append(_LEN.pack(len(raw)) + raw)
            else:  # "b"
                parts.append(_LEN.pack(len(value)) + bytes(value))
        return b"".join(parts)

    def unpack(self, payload: bytes) -> Tuple[Any, ...]:
        """Inverse of :meth:`pack`."""
        values: List[Any] = []
        pos = 0
        for name, type_char in self.schema:
            if type_char == "i":
                values.append(_INT.unpack_from(payload, pos)[0])
                pos += _INT.size
            elif type_char == "f":
                values.append(_FLOAT.unpack_from(payload, pos)[0])
                pos += _FLOAT.size
            else:
                (length,) = _LEN.unpack_from(payload, pos)
                pos += _LEN.size
                raw = payload[pos:pos + length]
                pos += length
                values.append(raw.decode("utf-8") if type_char == "s"
                              else bytes(raw))
        if pos != len(payload):
            raise ValueError(
                f"trailing bytes: row is {pos} bytes, payload {len(payload)}"
            )
        return tuple(values)

    def as_dict(self, payload: bytes) -> dict:
        """Unpack to a column-name -> value mapping."""
        return dict(zip(self.columns, self.unpack(payload)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(f"{n}:{t}" for n, t in self.schema)
        return f"RowCodec({cols})"
