"""A B-tree index on top of the multi-system engine.

Design notes:

* **Nodes are ordinary pages** (type INDEX).  Slot 0 of every node is a
  metadata record (level; 0 = leaf).  Entries live in the remaining
  slots, *logically* sorted — physical slot order is arbitrary, and
  lookups sort in memory (cheap at 4 KiB page scale).  This keeps every
  structural change expressible as the engine's logged record
  operations, so index recovery is just ARIES redo/undo.
* **The root page id never changes.**  A root split allocates two
  children and turns the root into an inner node, so a `BTree` handle
  (root id + key width) survives crashes and can be reopened by any
  system of the complex.
* **Empty leaves are deallocated** (the paper's empty-index-page case)
  and later page splits reallocate pages through the read-free
  Section 3.4 path.
* Locking: entry mutations use the engine's record locks; traversal
  uses page fixes (latch analogue).  Key-range locking (ARIES/KVL) is
  out of scope, as for the paper.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.storage.page import Page, PageType

_META = struct.Struct("<4sB")         # magic, level
_MAGIC = b"BTN1"
_CHILD = struct.Struct("<I")
_KEY_LEN = struct.Struct("<H")

# Split when a node's live entries would exceed this (kept small enough
# that every entry size fits comfortably in a 4 KiB page).
DEFAULT_FANOUT = 32


def _encode_entry(key: bytes, payload: bytes) -> bytes:
    return _KEY_LEN.pack(len(key)) + key + payload


def _decode_entry(raw: bytes) -> Tuple[bytes, bytes]:
    (key_len,) = _KEY_LEN.unpack_from(raw, 0)
    start = _KEY_LEN.size
    return raw[start:start + key_len], raw[start + key_len:]


@dataclass
class _Node:
    """Parsed view of one node page (valid while the page is fixed)."""

    page_id: int
    level: int
    entries: List[Tuple[bytes, bytes, int]]  # (key, payload, slot)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0


class BTree:
    """A crash-safe B-tree index usable from any SD instance.

    ``BTree.create(instance, txn)`` builds a new empty tree;
    ``BTree(root_page_id)`` reopens an existing one (e.g. after a
    restart, or from a different system of the complex).
    """

    def __init__(self, root_page_id: int,
                 fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        self.root_page_id = root_page_id
        self.fanout = fanout

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, instance, txn, fanout: int = DEFAULT_FANOUT) -> "BTree":
        root_id = instance.allocate_page(txn, PageType.INDEX)
        instance.insert(txn, root_id, _META.pack(_MAGIC, 0))
        return cls(root_id, fanout=fanout)

    # ------------------------------------------------------------------
    # node parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _parse(page: Page) -> _Node:
        level: Optional[int] = None
        entries: List[Tuple[bytes, bytes, int]] = []
        for slot, raw in page.records():
            if raw[:4] == _MAGIC and len(raw) == _META.size:
                level = _META.unpack(raw)[1]
                continue
            key, payload = _decode_entry(raw)
            entries.append((key, payload, slot))
        if level is None:
            raise ReproError(
                f"page {page.page_id} is not a B-tree node"
            )
        entries.sort(key=lambda e: e[0])
        return _Node(page_id=page.page_id, level=level, entries=entries)

    def _read_node(self, instance, page_id: int,
                   for_update: bool = False) -> _Node:
        page = instance.fix_page(page_id, for_update=for_update)
        try:
            return self._parse(page)
        finally:
            instance.unfix_page(page_id)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _child_for(self, node: _Node, key: bytes) -> int:
        """Inner-node routing: rightmost child whose separator <= key."""
        chosen = None
        for sep, payload, _ in node.entries:
            if sep == b"" or sep <= key:
                chosen = payload
            else:
                break
        if chosen is None:
            raise ReproError(
                f"inner node {node.page_id} has no route for {key!r}"
            )
        return _CHILD.unpack(chosen)[0]

    def _descend_to_leaf(self, instance, key: bytes) -> List[int]:
        """Path of page ids from root to the leaf responsible for key."""
        path = [self.root_page_id]
        node = self._read_node(instance, self.root_page_id)
        while not node.is_leaf:
            child = self._child_for(node, key)
            path.append(child)
            node = self._read_node(instance, child)
        return path

    def search(self, instance, txn, key: bytes) -> Optional[bytes]:
        """Exact-match lookup; returns the value or None."""
        leaf_id = self._descend_to_leaf(instance, key)[-1]
        node = self._read_node(instance, leaf_id)
        for entry_key, payload, _ in node.entries:
            if entry_key == key:
                return payload
        return None

    def scan(self, instance, txn) -> Iterator[Tuple[bytes, bytes]]:
        """Full in-order scan, yielding (key, value)."""
        yield from self._scan_node(instance, self.root_page_id, None, None)

    def range_scan(self, instance, txn, lo: Optional[bytes] = None,
                   hi: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """In-order scan of keys in ``[lo, hi)`` (either bound may be
        None for open-ended), pruning subtrees by separator keys."""
        if lo is not None and hi is not None and lo >= hi:
            return
        yield from self._scan_node(instance, self.root_page_id, lo, hi)

    def _scan_node(self, instance, page_id: int,
                   lo: Optional[bytes], hi: Optional[bytes]):
        node = self._read_node(instance, page_id)
        if node.is_leaf:
            for key, payload, _ in node.entries:
                if lo is not None and key < lo:
                    continue
                if hi is not None and key >= hi:
                    return
                yield key, payload
            return
        entries = node.entries
        for i, (sep, payload, _) in enumerate(entries):
            # A child covers [its separator, next separator).  Prune
            # children entirely outside the requested range.
            next_sep = entries[i + 1][0] if i + 1 < len(entries) else None
            if hi is not None and sep != b"" and sep >= hi:
                return
            if lo is not None and next_sep is not None \
                    and next_sep != b"" and next_sep <= lo:
                continue
            yield from self._scan_node(
                instance, _CHILD.unpack(payload)[0], lo, hi
            )

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, instance, txn, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        if not key:
            raise ValueError("keys must be non-empty")
        path = self._descend_to_leaf(instance, key)
        leaf_id = path[-1]
        node = self._read_node(instance, leaf_id)
        for entry_key, _, slot in node.entries:
            if entry_key == key:
                instance.update(txn, leaf_id, slot,
                                _encode_entry(key, value))
                return
        instance.insert(txn, leaf_id, _encode_entry(key, value))
        node = self._read_node(instance, leaf_id)
        if len(node.entries) > self.fanout:
            self._split(instance, txn, path)

    def _split(self, instance, txn, path: List[int]) -> None:
        """Split the node at the end of ``path``, recursing upward."""
        page_id = path[-1]
        node = self._read_node(instance, page_id)
        mid = len(node.entries) // 2
        movers = node.entries[mid:]
        sep_key = movers[0][0]
        # The new sibling: allocated read-free (Section 3.4 in action —
        # a page previously deallocated by an empty-leaf removal may be
        # reused here without a disk read).
        sibling_id = instance.allocate_page(txn, PageType.INDEX)
        instance.insert(txn, sibling_id, _META.pack(_MAGIC, node.level))
        for key, payload, slot in movers:
            instance.insert(txn, sibling_id, _encode_entry(key, payload))
            instance.delete(txn, page_id, slot)
        if page_id == self.root_page_id:
            self._split_root(instance, txn, node, sep_key, sibling_id)
            return
        parent_id = path[-2]
        instance.insert(txn, parent_id,
                        _encode_entry(sep_key, _CHILD.pack(sibling_id)))
        parent = self._read_node(instance, parent_id)
        if len(parent.entries) > self.fanout:
            self._split(instance, txn, path[:-1])

    def _split_root(self, instance, txn, node: _Node, sep_key: bytes,
                    sibling_id: int) -> None:
        """Root split: keep the root page id stable by pushing the
        root's remaining entries into a fresh left child."""
        left_id = instance.allocate_page(txn, PageType.INDEX)
        instance.insert(txn, left_id, _META.pack(_MAGIC, node.level))
        current = self._read_node(instance, self.root_page_id)
        for key, payload, slot in current.entries:
            instance.insert(txn, left_id, _encode_entry(key, payload))
            instance.delete(txn, self.root_page_id, slot)
        # Retype the root as an inner node one level up.
        root_page = instance.fix_page(self.root_page_id)
        meta_slot = next(
            slot for slot, raw in root_page.records()
            if raw[:4] == _MAGIC
        )
        instance.unfix_page(self.root_page_id)
        instance.update(txn, self.root_page_id, meta_slot,
                        _META.pack(_MAGIC, node.level + 1))
        instance.insert(txn, self.root_page_id,
                        _encode_entry(b"", _CHILD.pack(left_id)))
        instance.insert(txn, self.root_page_id,
                        _encode_entry(sep_key, _CHILD.pack(sibling_id)))

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def delete(self, instance, txn, key: bytes) -> bool:
        """Delete ``key``; returns True if it existed.

        A leaf left empty is unlinked from its parent and deallocated —
        the paper's empty-index-page case, making the page available
        for read-free reallocation by any system.
        """
        path = self._descend_to_leaf(instance, key)
        leaf_id = path[-1]
        node = self._read_node(instance, leaf_id)
        slot = next(
            (s for k, _, s in node.entries if k == key), None
        )
        if slot is None:
            return False
        instance.delete(txn, leaf_id, slot)
        node = self._read_node(instance, leaf_id)
        if not node.entries and leaf_id != self.root_page_id:
            self._remove_empty_node(instance, txn, path)
        return True

    def _remove_empty_node(self, instance, txn, path: List[int]) -> None:
        """Unlink and deallocate the empty node at the end of ``path``,
        propagating upward: an inner node left childless is removed too,
        and a childless root collapses back to an empty leaf."""
        node_id = path[-1]
        parent_id = path[-2]
        parent = self._read_node(instance, parent_id)
        target = _CHILD.pack(node_id)
        removed_sep = None
        for sep, payload, slot in parent.entries:
            if payload == target:
                removed_sep = sep
                instance.delete(txn, parent_id, slot)
                break
        parent = self._read_node(instance, parent_id)
        if parent.entries and removed_sep is not None:
            # If we removed the node's *lowest* separator, the subtree's
            # lower bound must survive: the new first child inherits the
            # removed separator (b"" for the leftmost subtree).  Without
            # this, keys in [removed_sep, new_first_sep) would route
            # here and find no child.
            first_key, first_payload, first_slot = parent.entries[0]
            if removed_sep == b"" or removed_sep < first_key:
                if first_key != removed_sep:
                    instance.update(txn, parent_id, first_slot,
                                    _encode_entry(removed_sep, first_payload))
        self._wipe_and_deallocate(instance, txn, node_id)
        if not parent.entries:
            if parent_id == self.root_page_id:
                # Childless root: collapse back to an empty leaf.
                root_page = instance.fix_page(self.root_page_id)
                meta_slot = next(
                    slot for slot, raw in root_page.records()
                    if raw[:4] == _MAGIC
                )
                instance.unfix_page(self.root_page_id)
                instance.update(txn, self.root_page_id, meta_slot,
                                _META.pack(_MAGIC, 0))
            else:
                self._remove_empty_node(instance, txn, path[:-1])

    def _wipe_and_deallocate(self, instance, txn, page_id: int) -> None:
        """Delete a node's remaining records (the meta record) so the
        page is empty, then deallocate it for reuse."""
        page = instance.fix_page(page_id)
        slots = [slot for slot, _ in page.records()]
        instance.unfix_page(page_id)
        for slot in slots:
            instance.delete(txn, page_id, slot)
        instance.deallocate_page(txn, page_id)

    # ------------------------------------------------------------------
    def depth(self, instance) -> int:
        """Tree height (1 = root is a leaf)."""
        node = self._read_node(instance, self.root_page_id)
        return node.level + 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BTree(root={self.root_page_id}, fanout={self.fanout})"
