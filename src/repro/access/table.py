"""Segmented tables: the DB2 structure behind the mass-delete claim.

In DB2's segmented tablespaces "records from different tables are not
intermixed on a given data page" (Section 4.2, citing [CrHT90]), which
is exactly what makes mass delete an SMP-only operation: dropping all
rows of a table means flipping the allocation bits of *its* pages, and
no other table's data is disturbed.

:class:`SegmentedTable` allocates pages in fixed-size segments, tracks
them in an in-memory descriptor (the system catalog analogue — catalog
durability is out of the reproduction's scope), and routes row
operations through the engine's logged record operations so tables are
recovered by the ordinary ARIES machinery.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.common.errors import CorruptPageError, ReproError
from repro.storage.page import PageType

# Pages allocated at a time when a table grows.
DEFAULT_SEGMENT_PAGES = 4

RowId = Tuple[int, int]  # (page_id, slot)


class SegmentedTable:
    """A heap table whose pages are never shared with other tables."""

    def __init__(self, name: str,
                 segment_pages: int = DEFAULT_SEGMENT_PAGES) -> None:
        if segment_pages <= 0:
            raise ValueError("segments need at least one page")
        self.name = name
        self.segment_pages = segment_pages
        self.pages: List[int] = []

    # ------------------------------------------------------------------
    def insert_row(self, instance, txn, payload: bytes) -> RowId:
        """Insert a row, growing the table by a segment when needed."""
        for page_id in reversed(self.pages):
            try:
                slot = instance.insert(txn, page_id, payload)
                return (page_id, slot)
            except CorruptPageError:
                continue  # page full; try older pages, then grow
        self._grow(instance, txn)
        page_id = self.pages[-self.segment_pages]  # first page of segment
        slot = instance.insert(txn, page_id, payload)
        return (page_id, slot)

    def _grow(self, instance, txn) -> None:
        for _ in range(self.segment_pages):
            self.pages.append(instance.allocate_page(txn, PageType.DATA))

    def read_row(self, instance, txn, row_id: RowId,
                 use_commit_lsn: bool = False) -> Optional[bytes]:
        page_id, slot = row_id
        self._check_owned(page_id)
        return instance.read(txn, page_id, slot,
                             use_commit_lsn=use_commit_lsn)

    def update_row(self, instance, txn, row_id: RowId,
                   payload: bytes) -> None:
        page_id, slot = row_id
        self._check_owned(page_id)
        instance.update(txn, page_id, slot, payload)

    def delete_row(self, instance, txn, row_id: RowId) -> None:
        page_id, slot = row_id
        self._check_owned(page_id)
        instance.delete(txn, page_id, slot)

    def scan(self, instance, txn) -> Iterator[Tuple[RowId, bytes]]:
        """Yield every live row as ((page, slot), payload)."""
        for page_id in self.pages:
            page = instance.fix_page(page_id)
            try:
                rows = list(page.records())
            finally:
                instance.unfix_page(page_id)
            for slot, payload in rows:
                yield (page_id, slot), payload

    def row_count(self, instance, txn) -> int:
        return sum(1 for _ in self.scan(instance, txn))

    # ------------------------------------------------------------------
    def mass_delete(self, instance, txn) -> int:
        """Drop every row by deallocating the table's pages in the SMPs
        — the DB2 fast path: no data-page reads, one range log record
        per contiguous run.  Returns the number of log records written.
        The table keeps its descriptor and starts empty."""
        if not self.pages:
            return 0
        records = instance.mass_delete(txn, self.pages)
        self.pages = []
        return records

    def _check_owned(self, page_id: int) -> None:
        if page_id not in self.pages:
            raise ReproError(
                f"page {page_id} does not belong to table {self.name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SegmentedTable({self.name!r}, pages={len(self.pages)})"
