"""Buffer coherency: the medium and fast page-transfer schemes.

The controller tracks, per page, which instance may hold a dirty copy
(the *writer*) and which instances hold cached copies (the *readers*),
and mediates transfers between buffer pools.

Two schemes from [MoNa91], both discussed by the paper:

* **medium** (the paper's Section 3.1 assumption, the default): a dirty
  page is written to disk before another system may use it.  A page on
  disk therefore carries dirty updates of at most one system, and
  restart redo of a failed instance needs only that instance's log.
* **fast** (the paper's Section 5 extension): a dirty page is
  transferred memory-to-memory after the *sender forces its log*
  through the page's last update — no intermediate disk write.  Restart
  recovery of an instance must then redo its pages from the **merged**
  local logs (see ``SDComplex.restart_instance``).

Crashed instances keep their writer marks ("retained" ownership) until
restart recovery finishes — other instances must not touch those pages,
because the disk version may be missing redo that only log recovery can
supply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.common.config import NULL_LSN, PAGE_SIZE
from repro.common.errors import ProtocolError
from repro.common.lsn import Lsn
from repro.obs import events as ev
from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sd.complex import SDComplex
    from repro.sd.instance import DbmsInstance

SCHEMES = ("medium", "fast")


@dataclass
class _Transfer:
    """A page image in flight between buffer pools."""

    page: Page
    dirty: bool = False
    rec_lsn: Lsn = NULL_LSN   # sender's RecLSN (fast scheme only)


class CoherencyController:
    """Mediates page ownership between the instances of one complex."""

    def __init__(self, sd_complex: "SDComplex",
                 scheme: str = "medium") -> None:
        if scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}")
        self._complex = sd_complex
        self.scheme = scheme
        self._writer: Dict[int, int] = {}
        self._readers: Dict[int, Set[int]] = {}
        self._crashed: Set[int] = set()

    # ------------------------------------------------------------------
    def access(
        self, requester: "DbmsInstance", page_id: int, for_update: bool
    ) -> Page:
        """Give ``requester`` a fixed copy of ``page_id`` in its pool."""
        if self._complex.instant:
            # Instant restart in progress somewhere in the complex: a
            # still-pending page must have its redo chain applied before
            # any system reads or updates it.  The registry is empty on
            # the classic path, so this costs one truthiness test there.
            self._complex.ensure_instant_recovered(page_id)
        writer = self._writer.get(page_id)
        if writer is not None and writer in self._crashed \
                and writer != requester.system_id:
            raise ProtocolError(
                f"page {page_id} is owned by crashed system {writer}; "
                f"restart recovery must run first"
            )
        transfer: Optional[_Transfer] = None
        if writer is not None and writer != requester.system_id:
            if for_update or self.scheme == "medium":
                transfer = self._surrender(writer, page_id,
                                           requester.system_id)
            else:
                # fast-scheme read: the writer keeps its dirty copy and
                # writer status; the reader gets a consistent image.
                transfer = self._share_copy(writer, page_id,
                                            requester.system_id)
        if for_update:
            self._invalidate_other_readers(page_id, requester.system_id)
            self._writer[page_id] = requester.system_id
            self._readers[page_id] = {requester.system_id}
        else:
            if writer is not None and writer != requester.system_id \
                    and self.scheme == "medium":
                # Old writer demoted: its copy (if any) is now clean.
                self._writer.pop(page_id, None)
            self._readers.setdefault(page_id, set()).add(requester.system_id)
        if requester.pool.contains(page_id):
            if transfer is not None:
                # The requester's buffered copy predates the transfer
                # (e.g. a recovery redo pass read the disk version
                # while another system still held the page); the
                # transferred image is the current one.
                requester.pool.put_page(transfer.page)
                if transfer.dirty:
                    self._stamp_transferred_dirty(requester, page_id,
                                                  transfer)
            return requester.pool.fix(page_id)
        if transfer is not None:
            page = requester.pool.install_page(transfer.page,
                                               dirty=transfer.dirty)
            if transfer.dirty:
                self._stamp_transferred_dirty(requester, page_id, transfer)
            return page
        return requester.pool.fix(page_id)  # disk read

    @staticmethod
    def _stamp_transferred_dirty(requester: "DbmsInstance", page_id: int,
                                 transfer: "_Transfer") -> None:
        """BCB bookkeeping for a dirty page received via fast transfer.

        The covering log records live in the *sender's* log (already
        forced); nothing in the receiver's log describes this page yet,
        so the WAL high-water mark is zero and RecAddr is only a
        fast-restart placeholder.
        """
        bcb = requester.pool.bcb(page_id)
        bcb.dirty = True
        bcb.rec_lsn = transfer.rec_lsn
        bcb.rec_addr = requester.log.end_offset
        bcb.last_update_end = 0

    def note_new_page(self, owner: "DbmsInstance", page_id: int) -> None:
        """A freshly formatted page materialised in ``owner``'s pool
        without any disk traffic (the reallocation optimization).

        Any copies other systems still cache belong to the page's
        previous (deallocated) life and are purged — even dirty ones:
        a deallocated page's content is moot, and the format record's
        LSN supersedes it on every recovery path.
        """
        for system_id, instance in self._complex.instances.items():
            if system_id != owner.system_id \
                    and instance.pool.contains(page_id):
                instance.pool.drop_page(page_id, allow_dirty=True)
                self._complex.network.message(owner.system_id, system_id,
                                              "invalidate")
        self._writer[page_id] = owner.system_id
        self._readers[page_id] = {owner.system_id}

    # ------------------------------------------------------------------
    def _surrender(
        self, owner_id: int, page_id: int, requester_id: int
    ) -> Optional[_Transfer]:
        """Current writer gives up the page."""
        owner = self._complex.instances[owner_id]
        if not owner.pool.contains(page_id):
            return None  # already evicted (and therefore already on disk)
        bcb = owner.pool.bcb(page_id)
        dirty = bcb.dirty
        transfer: _Transfer
        if self.scheme == "medium":
            if dirty:
                # Medium scheme: write to disk *before* the transfer.
                owner.pool.write_page(page_id)
            transfer = _Transfer(page=bcb.page.copy(), dirty=False)
        else:
            if dirty:
                # Fast scheme: no disk write, but the sender's log must
                # be stable through the page's last update first.
                owner.log.force(up_to=bcb.last_update_end)
            transfer = _Transfer(page=bcb.page.copy(), dirty=dirty,
                                 rec_lsn=bcb.rec_lsn)
            bcb.mark_clean()  # responsibility moves with the page
        owner.pool.drop_page(page_id)
        self._readers.setdefault(page_id, set()).discard(owner_id)
        self._complex.network.message(
            owner_id, requester_id, "page_transfer", nbytes=PAGE_SIZE
        )
        tracer = self._complex.tracer
        if tracer.enabled:
            tracer.emit(
                ev.PAGE_TRANSFER, system=owner_id, page=page_id,
                src=owner_id, dst=requester_id, dirty=transfer.dirty,
                scheme=self.scheme,
            )
        return transfer

    def _share_copy(
        self, owner_id: int, page_id: int, requester_id: int
    ) -> Optional[_Transfer]:
        """Fast-scheme read: copy without ownership change."""
        owner = self._complex.instances[owner_id]
        if not owner.pool.contains(page_id):
            return None
        bcb = owner.pool.bcb(page_id)
        if bcb.dirty:
            # Reader consistency: the records covering what it sees
            # must be stable before the copy escapes the owner.
            owner.log.force(up_to=bcb.last_update_end)
        self._complex.network.message(
            owner_id, requester_id, "page_copy", nbytes=PAGE_SIZE
        )
        tracer = self._complex.tracer
        if tracer.enabled:
            tracer.emit(
                ev.PAGE_COPY, system=owner_id, page=page_id,
                src=owner_id, dst=requester_id,
            )
        return _Transfer(page=bcb.page.copy(), dirty=False)

    def _invalidate_other_readers(self, page_id: int, keep: int) -> None:
        for reader_id in sorted(self._readers.get(page_id, set()) - {keep}):
            instance = self._complex.instances.get(reader_id)
            if instance is not None and instance.pool.contains(page_id):
                if instance.pool.is_dirty(page_id):
                    raise ProtocolError(
                        f"system {reader_id} holds page {page_id} dirty "
                        f"without writer status"
                    )
                instance.pool.drop_page(page_id)
            self._complex.network.message(keep, reader_id, "invalidate")
        self._readers[page_id] = {keep}

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def note_crash(self, system_id: int) -> None:
        """Writer marks are retained; reader registrations are dropped."""
        self._crashed.add(system_id)
        for readers in self._readers.values():
            readers.discard(system_id)

    def note_recovered(self, system_id: int) -> None:
        """Restart recovery finished: release retained ownership.

        Cached copies other systems took from the failed writer are
        dropped: under the fast scheme they may be older than the
        reconstructed disk version, so letting them linger would serve
        stale reads.
        """
        self._crashed.discard(system_id)
        for page_id in [p for p, w in self._writer.items() if w == system_id]:
            del self._writer[page_id]
            for reader_id in self._readers.pop(page_id, set()):
                if reader_id == system_id:
                    continue
                instance = self._complex.instances.get(reader_id)
                if instance is not None and instance.pool.contains(page_id) \
                        and not instance.pool.is_dirty(page_id) \
                        and instance.pool.bcb(page_id).fix_count == 0:
                    instance.pool.drop_page(page_id)
        # The pages recovery pulled into the survivor's pool must be
        # registered as cached copies, or future cross-system updates
        # would never invalidate them and stale reads could follow.
        recovered = self._complex.instances.get(system_id)
        if recovered is not None:
            for bcb in recovered.pool.pages():
                self._readers.setdefault(bcb.page_id, set()).add(system_id)

    def writer_of(self, page_id: int) -> Optional[int]:
        return self._writer.get(page_id)

    def readers_of(self, page_id: int) -> Set[int]:
        return set(self._readers.get(page_id, set()))

    def pages_owned_by(self, system_id: int) -> List[int]:
        """Pages whose latest version may live only in ``system_id``'s
        (possibly lost) buffer pool — the fast-restart redo candidates."""
        return sorted(p for p, w in self._writer.items() if w == system_id)
