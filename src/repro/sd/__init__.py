"""The shared disks (SD) architecture — Figure 1 of the paper.

Multiple DBMS instances, each with a private buffer pool and a private
local log, share one set of disks.  A global lock manager coordinates
transaction locking; a coherency controller migrates pages between
buffer pools under the **medium page-transfer scheme** (Section 3.1's
assumption: a modified page is written to disk before another system
may update it, so a page on disk carries dirty updates of at most one
system and restart redo needs only the failed instance's log).
"""

from repro.sd.complex import SDComplex
from repro.sd.coherency import CoherencyController
from repro.sd.instance import DbmsInstance

__all__ = ["CoherencyController", "DbmsInstance", "SDComplex"]
