"""One DBMS instance of the shared-disks complex.

An instance bundles the four per-system components of Figure 1 — a
local log manager (with USN LSN assignment), a private buffer pool, a
transaction manager, and an unsynchronized clock — and implements the
data operations the experiments drive: record insert/update/delete/read,
page allocation and deallocation (including the read-free reallocation
of Section 3.4), mass delete (Section 4.2), commit and rollback.

Locking goes through the complex's global lock manager; page access
goes through the coherency controller so cross-system transfers follow
the medium page-transfer scheme.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.buffer.buffer_pool import BufferPool
from repro.common.clock import SkewedClock
from repro.common.errors import (
    DegradedModeError,
    FaultInjectedError,
    LockTimeoutError,
    LockWouldBlock,
    ReproError,
)
from repro.common.lsn import Lsn
from repro.common.stats import (
    BULK_OPS_APPLIED,
    BULK_READ_BATCHES,
    BULK_UPDATE_BATCHES,
    DEGRADED_ENTRIES,
    DEGRADED_REJECTIONS,
    LOCK_ESCALATIONS,
    LOCK_RETRIES,
    LOCK_RETRY_TIMEOUTS,
    PAGE_READS_AVOIDED,
)
from repro.faults import points as fp
from repro.faults.injector import FAIL
from repro.faults.policy import RetryPolicy, run_with_lock_retry
from repro.locking.lock_manager import LockMode, LockStatus, page_lock, record_lock
from repro.obs import events as ev
from repro.recovery.apply import apply_op, apply_payload, stamp_page_lsn
from repro.storage.page import Page, PageType
from repro.storage.space_map import SpaceMap
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction, TxnState
from repro.wal.log_manager import LogManager
from repro.wal.records import (
    LogRecord,
    PageOp,
    RecordKind,
    decode_op,
    encode_op,
    make_clr,
    make_format,
    make_update,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sd.complex import SDComplex


class DbmsInstance:
    """A DBMS instance: private log + private buffer pool, shared disks."""

    def __init__(
        self,
        system_id: int,
        sd_complex: "SDComplex",
        buffer_capacity: int = 128,
        lock_granularity: str = "record",
        isolation: str = "cursor_stability",
        escalation_threshold: Optional[int] = None,
        clock: Optional[SkewedClock] = None,
        lock_retry: Optional[RetryPolicy] = None,
    ) -> None:
        """``isolation`` is "cursor_stability" (degree 2: read locks
        released after the read — the level the Commit_LSN optimization
        targets) or "repeatable_read" (degree 3: read locks held to
        commit).  ``escalation_threshold``, when set, escalates a
        transaction's record locks on a page to one page X lock after
        that many record locks — opportunistically, never waiting."""
        if lock_granularity not in ("record", "page"):
            raise ValueError("lock_granularity must be 'record' or 'page'")
        if isolation not in ("cursor_stability", "repeatable_read"):
            raise ValueError(
                "isolation must be 'cursor_stability' or 'repeatable_read'"
            )
        if escalation_threshold is not None and escalation_threshold < 2:
            raise ValueError("escalation threshold must be >= 2")
        self.system_id = system_id
        self.complex = sd_complex
        self.stats = sd_complex.stats
        self.tracer = sd_complex.tracer
        self.injector = sd_complex.injector
        self.log = LogManager(system_id, stats=self.stats,
                              tracer=self.tracer, injector=self.injector)
        self.pool = BufferPool(
            sd_complex.disk, self.log, capacity=buffer_capacity,
            tracer=self.tracer, injector=self.injector,
        )
        self.txns = TransactionManager(system_id)
        self.lock_granularity = lock_granularity
        self.isolation = isolation
        self.escalation_threshold = escalation_threshold
        # Unsynchronized on purpose: recovery must never consult it.
        self.clock = clock if clock is not None else SkewedClock(
            offset=37.0 * system_id, rate=1.0 + 0.13 * system_id
        )
        self.tracer.register_clock(system_id, self.clock)
        self.crashed = False
        # Read-only degraded mode: entered when the log device fails
        # (an injected ``log.force`` fault); reads keep working, every
        # update or commit is rejected until restart.
        self.degraded = False
        # Optional bounded lock-wait policy; None keeps the raw
        # LockWouldBlock behaviour the interleaved workload driver
        # round-robins on.
        self.lock_retry = lock_retry
        # Lazy (group) commits awaiting their covering log force.
        self._pending_commits: List[Transaction] = []

    # ------------------------------------------------------------------
    # transaction control
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        self._check_up()
        txn = self.txns.begin()
        if self.tracer.enabled:
            self.tracer.emit(ev.TXN_BEGIN, system=self.system_id,
                             txn=txn.txn_id)
        return txn

    def commit(self, txn: Transaction, lazy: bool = False) -> None:
        """Commit: force the log through the commit record (WAL commit
        rule), then release locks and end the transaction.

        ``lazy=True`` enables group commit: the commit record is
        appended but the force is deferred until :meth:`sync_commits`
        (or a later eager commit) flushes the log — one force then
        covers a whole batch.  A lazy commit is **not acknowledged**
        until synced: its locks stay held, and a crash before the sync
        rolls it back like any in-flight transaction.
        """
        if self.tracer.enabled:
            with self.tracer.span(ev.SPAN_COMMIT, system=self.system_id,
                                  txn=txn.txn_id, lazy=lazy):
                self._commit(txn, lazy)
        else:
            self._commit(txn, lazy)

    def _commit(self, txn: Transaction, lazy: bool) -> None:
        self._check_writable()
        self._check_active(txn)
        commit = LogRecord(kind=RecordKind.COMMIT, txn_id=txn.txn_id,
                           prev_lsn=txn.last_lsn)
        addr = self.log.append(commit)
        txn.note_logged(commit.lsn, addr.offset, undoable=False)
        if self.tracer.enabled:
            self.tracer.emit(ev.TXN_COMMIT, system=self.system_id,
                             txn=txn.txn_id, lazy=lazy)
        if lazy:
            self._pending_commits.append(txn)
            return
        if self.injector.enabled:
            self.injector.fire(fp.COMMIT_PRE_FORCE, system=self.system_id,
                               txn=txn.txn_id)
        self._force_or_degrade()
        if self.injector.enabled:
            self.injector.fire(fp.COMMIT_POST_FORCE, system=self.system_id,
                               txn=txn.txn_id)
        if self.complex.replication.enabled:
            # The commit point of the configured write-ack level: ship
            # the stable stream and wait for standby acks before the
            # commit is acknowledged.  The local force above already
            # made it locally durable, so a missed ack degrades rather
            # than rolls back.
            self._replicate_acks([txn] + list(self._pending_commits))
        self._finish_commit(txn)
        self._finish_pending()

    def sync_commits(self) -> int:
        """Group-commit sync: one log force acknowledges every pending
        lazy commit.  Returns the number of transactions completed."""
        self._check_writable()
        if not self._pending_commits:
            return 0
        self._force_or_degrade()
        if self.complex.replication.enabled:
            self._replicate_acks(list(self._pending_commits))
        return self._finish_pending()

    def _replicate_acks(self, txns: List[Transaction]) -> None:
        """Run the replication commit point for each newly-forced txn."""
        for txn in txns:
            self.complex.replication.on_commit(
                self.system_id, txn.txn_id, txn.last_lsn)

    def _force_or_degrade(self) -> None:
        """Force the log; a log-device failure degrades the instance.

        An injected ``fail`` at the ``log.force`` point means the
        commit record never reached stable storage: the commit is *not*
        acknowledged (the caller sees :class:`DegradedModeError`), the
        instance flips to read-only degraded mode, and the rest of the
        complex keeps running.  Crash-flavoured injections propagate
        untouched — they are the campaign's kill signal, not a device
        error.
        """
        try:
            self.log.force()
        except FaultInjectedError as exc:
            if exc.action != FAIL:
                raise
            self._enter_degraded("log device failure")
            raise DegradedModeError(
                f"system {self.system_id}: commit not durable, "
                f"log device failed"
            ) from exc

    def _finish_pending(self) -> int:
        finished = 0
        while self._pending_commits:
            self._finish_commit(self._pending_commits.pop(0))
            finished += 1
        return finished

    def _finish_commit(self, txn: Transaction) -> None:
        txn.state = TxnState.COMMITTED
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id,
                        prev_lsn=txn.last_lsn)
        self.log.append(end)
        self.complex.release_txn_locks(self, txn.txn_id)
        self.txns.end(txn)

    def rollback(self, txn: Transaction, to_savepoint: Optional[str] = None) -> None:
        """Undo the transaction's updates (all of them, or back to a
        savepoint), writing CLRs so the rollback itself is redoable.

        Undo entries are consumed as they are compensated, so a
        rollback that fails midway (e.g. a loser's page is fenced
        behind another system's crash) can simply be retried without
        double-compensation.
        """
        self._check_up()
        if txn.state not in (TxnState.ACTIVE, TxnState.ABORTING):
            raise ReproError(f"cannot roll back txn in state {txn.state}")
        txn.state = TxnState.ABORTING
        if self.tracer.enabled:
            self.tracer.emit(ev.TXN_ROLLBACK, system=self.system_id,
                             txn=txn.txn_id, savepoint=to_savepoint)
        stop_at = 0
        if to_savepoint is not None:
            stop_at = txn.savepoints[to_savepoint]
        while len(txn.undo_entries) > stop_at:
            entry = txn.undo_entries[-1]
            record = self.log.read_record_at(entry.offset)
            self._undo_one(txn, record)
            txn.undo_entries.pop()
        if to_savepoint is not None:
            txn.truncate_to_savepoint(to_savepoint)
            txn.state = TxnState.ACTIVE
            return
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id,
                        prev_lsn=txn.last_lsn)
        self.log.append(end)
        self.complex.release_txn_locks(self, txn.txn_id)
        self.txns.end(txn)

    def _undo_one(self, txn: Transaction, record: LogRecord) -> None:
        """Undo a single update record, logging a CLR first."""
        page = self._access(record.page_id, for_update=True)
        try:
            clr = make_clr(
                txn_id=txn.txn_id, system_id=self.system_id,
                page_id=record.page_id, slot=record.slot,
                redo=record.undo, undo_next_lsn=record.prev_lsn,
                prev_lsn=txn.last_lsn,
            )
            page_lsn_prev = page.page_lsn
            addr = self.log.append(clr, page_lsn=page_lsn_prev)
            apply_payload(page, record.slot, record.undo, clr.lsn)
            self.pool.note_update(record.page_id, clr.lsn, addr.offset,
                                  self.log.end_offset)
            txn.note_logged(clr.lsn, addr.offset, undoable=False)
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.PAGE_UPDATE, system=self.system_id,
                    page=record.page_id, slot=record.slot, txn=txn.txn_id,
                    lsn=int(clr.lsn), page_lsn_prev=int(page_lsn_prev),
                    kind=RecordKind.CLR.name,
                )
        finally:
            self.pool.unfix(record.page_id)

    def set_savepoint(self, txn: Transaction, name: str) -> None:
        self._check_active(txn)
        txn.set_savepoint(name)

    # ------------------------------------------------------------------
    # record operations
    # ------------------------------------------------------------------
    def insert(self, txn: Transaction, page_id: int, payload: bytes) -> int:
        """Insert a record; returns its slot number."""
        self._check_writable()
        self._check_active(txn)
        page = self._access(page_id, for_update=True)
        try:
            slot = page.insert_record(payload)
            # Undo the optimistic insert before locking: the lock may
            # block and the caller will retry the whole operation.
            self._lock_for_write(txn, page_id, slot, unfix_first=page)
            record = make_update(
                txn_id=txn.txn_id, system_id=self.system_id,
                page_id=page_id, slot=slot,
                redo=encode_op(PageOp.INSERT, payload),
                undo=encode_op(PageOp.DELETE),
                prev_lsn=txn.last_lsn,
            )
            self._log_update(txn, page, record, already_applied=True)
            return slot
        finally:
            self.pool.unfix(page_id)

    def update(self, txn: Transaction, page_id: int, slot: int,
               payload: bytes) -> None:
        """Overwrite the record in ``slot`` with ``payload``."""
        self._check_writable()
        self._check_active(txn)
        self._lock_for_write(txn, page_id, slot)
        page = self._access(page_id, for_update=True)
        try:
            old = page.read_record(slot)
            if old is None:
                raise ReproError(f"page {page_id} slot {slot} is empty")
            record = make_update(
                txn_id=txn.txn_id, system_id=self.system_id,
                page_id=page_id, slot=slot,
                redo=encode_op(PageOp.SET, payload),
                undo=encode_op(PageOp.SET, old),
                prev_lsn=txn.last_lsn,
            )
            page.update_record(slot, payload)
            self._log_update(txn, page, record, already_applied=True)
        finally:
            self.pool.unfix(page_id)

    def delete(self, txn: Transaction, page_id: int, slot: int) -> None:
        """Delete the record in ``slot``."""
        self._check_writable()
        self._check_active(txn)
        self._lock_for_write(txn, page_id, slot)
        page = self._access(page_id, for_update=True)
        try:
            old = page.read_record(slot)
            if old is None:
                raise ReproError(f"page {page_id} slot {slot} is empty")
            record = make_update(
                txn_id=txn.txn_id, system_id=self.system_id,
                page_id=page_id, slot=slot,
                redo=encode_op(PageOp.DELETE),
                undo=encode_op(PageOp.INSERT, old),
                prev_lsn=txn.last_lsn,
            )
            page.delete_record(slot)
            self._log_update(txn, page, record, already_applied=True)
        finally:
            self.pool.unfix(page_id)

    def read(self, txn: Transaction, page_id: int, slot: int,
             use_commit_lsn: bool = False) -> Optional[bytes]:
        """Read a record with cursor-stability semantics.

        With ``use_commit_lsn`` the Commit_LSN optimization is applied
        first (Section 2 problem 4): if the page's LSN is below the
        complex-wide Commit_LSN, everything on the page is committed and
        no record lock is needed.  Otherwise an S record lock is taken
        and immediately released (degree-2 consistency).
        """
        self._check_active(txn)
        page = self._access(page_id, for_update=False)
        try:
            if use_commit_lsn and self.complex.commit_lsn.check(page.page_lsn):
                return page.read_record(slot)
        finally:
            self.pool.unfix(page_id)
        # Slow path: lock hierarchically, re-fetch, read; under cursor
        # stability the record-level lock is released right after.
        releasable = self._lock_for_read(txn, page_id, slot)
        page = self._access(page_id, for_update=False)
        try:
            return page.read_record(slot)
        finally:
            self.pool.unfix(page_id)
            if self.isolation == "cursor_stability":
                for resource in releasable:
                    self.complex.release_lock(self, txn.txn_id, resource)

    # ------------------------------------------------------------------
    # vectorized record operations (the bulk-op fast lane)
    # ------------------------------------------------------------------
    def update_many(self, txn: Transaction,
                    updates: Sequence[Tuple[int, int, bytes]]) -> None:
        """Apply a batch of ``(page_id, slot, payload)`` updates in one
        vectorized call — the write half of the bulk-op lane.

        Semantics per op match :meth:`update` (same undo/redo payloads,
        same USN LSN chain, same ``PAGE_UPDATE`` events), batched:

        * **locks** — one page X lock per distinct page, acquired up
          front via the escalation machinery (the page lock covers all
          record locks, so later per-call ops on the page skip record
          locking too).  Coarser than per-record locks, never weaker.
          All locks are taken before any page is touched, so a
          ``LockWouldBlock`` surfaces with nothing applied and the
          whole batch can simply be retried.
        * **fixes** — each distinct page is fixed once for the batch.
        * **log** — one :meth:`LogManager.append_many
          <repro.wal.log_manager.LogManager.append_many>` for the whole
          batch.  LSNs are predicted with the USN rule
          (``max(page_lsn, running) + 1``) while applying, so undo
          chains (``prev_lsn``) and per-page LSN tracking are exact;
          the prediction is verified against the stamped records and a
          divergence is a hard error.

        If an op fails mid-batch (empty slot, page full), the already
        applied prefix is logged before the error surfaces — no page
        mutation is ever left unlogged, so rollback stays correct.
        """
        self._check_writable()
        self._check_active(txn)
        if not updates:
            return
        page_order: List[int] = list(
            dict.fromkeys(page_id for page_id, _, _ in updates))
        for page_id in page_order:
            if page_id not in txn.escalated_pages:
                self._lock(txn, page_lock(page_id), LockMode.X)
                txn.escalated_pages.add(page_id)
        pages: Dict[int, Page] = {}
        try:
            for page_id in page_order:
                pages[page_id] = self._access(page_id, for_update=True)
            if self.injector.enabled:
                for page_id, _, _ in updates:
                    self.injector.fire(fp.INSTANCE_UPDATE,
                                       system=self.system_id,
                                       page=page_id, txn=txn.txn_id)
            page_lsn_now: Dict[int, Lsn] = {
                page_id: pages[page_id].page_lsn for page_id in page_order
            }
            records: List[LogRecord] = []
            hints: List[Lsn] = []
            predicted: List[Lsn] = []
            prev = txn.last_lsn
            running = self.log.local_max_lsn
            try:
                for page_id, slot, payload in updates:
                    page = pages[page_id]
                    old = page.read_record(slot)
                    if old is None:
                        raise ReproError(
                            f"page {page_id} slot {slot} is empty")
                    hint = page_lsn_now[page_id]
                    lsn = (hint if hint > running else running) + 1
                    record = make_update(
                        txn_id=txn.txn_id, system_id=self.system_id,
                        page_id=page_id, slot=slot,
                        redo=encode_op(PageOp.SET, payload),
                        undo=encode_op(PageOp.SET, old),
                        prev_lsn=prev,
                    )
                    page.update_record(slot, payload)
                    # Only a fully applied op joins the batch; see the
                    # partial-failure contract in the docstring.
                    records.append(record)
                    hints.append(hint)
                    predicted.append(lsn)
                    page_lsn_now[page_id] = lsn
                    running = lsn
                    prev = lsn
            except Exception:
                self._log_bulk_updates(txn, pages, records, hints,
                                          predicted)
                raise
            self._log_bulk_updates(txn, pages, records, hints, predicted)
        finally:
            for page_id in pages:
                self.pool.unfix(page_id)

    def _log_bulk_updates(
        self,
        txn: Transaction,
        pages: Dict[int, Page],
        records: List[LogRecord],
        hints: List[Lsn],
        predicted: List[Lsn],
    ) -> None:
        """Log an applied batch (or applied prefix) and do the per-op
        USN bookkeeping :meth:`_log_update` would have done."""
        if not records:
            return
        addrs = self.log.append_many(records, page_lsns=hints)
        end_offset = self.log.end_offset
        tracing = self.tracer.enabled
        for record, addr, hint, lsn in zip(records, addrs, hints, predicted):
            if record.lsn != lsn:
                raise ReproError(
                    "bulk update LSN prediction diverged from the log "
                    f"(predicted {lsn}, stamped {record.lsn})"
                )
            page = pages[record.page_id]
            stamp_page_lsn(page, record.lsn)
            self.pool.note_update(record.page_id, record.lsn, addr.offset,
                                  end_offset)
            txn.note_logged(record.lsn, addr.offset, undoable=True)
            if tracing:
                self.tracer.emit(
                    ev.PAGE_UPDATE, system=self.system_id,
                    page=record.page_id, slot=record.slot, txn=txn.txn_id,
                    lsn=int(record.lsn), page_lsn_prev=int(hint),
                    kind=record.kind.name,
                )
        self.stats.incr(BULK_UPDATE_BATCHES)
        self.stats.incr(BULK_OPS_APPLIED, len(records))

    def read_many(self, txn: Transaction,
                  reads: Sequence[Tuple[int, int]],
                  use_commit_lsn: bool = False) -> List[Optional[bytes]]:
        """Read a batch of ``(page_id, slot)`` records — the read half
        of the bulk-op lane.

        Each distinct page is fixed once and locked once with a page S
        lock (coarser than the per-call IS + record-S pair, never
        weaker); under cursor stability the page locks this call
        introduced are released when it returns.  With
        ``use_commit_lsn`` the Commit_LSN screen is applied per page —
        a page whose LSN shows only committed data needs no lock at
        all, exactly as in :meth:`read`.
        """
        self._check_active(txn)
        if not reads:
            return []
        page_order: List[int] = list(
            dict.fromkeys(page_id for page_id, _ in reads))
        glm = self.complex.glm
        pages: Dict[int, Page] = {}
        releasable: List[Tuple] = []
        try:
            for page_id in page_order:
                page = self._access(page_id, for_update=False)
                pages[page_id] = page
                if use_commit_lsn and \
                        self.complex.commit_lsn.check(page.page_lsn):
                    continue
                if page_id in txn.escalated_pages:
                    continue
                resource = page_lock(page_id)
                held_before = glm.holds(txn.txn_id, resource)
                self._lock(txn, resource, LockMode.S)
                if not held_before:
                    releasable.append(resource)
            results = [pages[page_id].read_record(slot)
                       for page_id, slot in reads]
        finally:
            for page_id in pages:
                self.pool.unfix(page_id)
            if self.isolation == "cursor_stability":
                for resource in releasable:
                    self.complex.release_lock(self, txn.txn_id, resource)
        self.stats.incr(BULK_READ_BATCHES)
        self.stats.incr(BULK_OPS_APPLIED, len(reads))
        return results

    # ------------------------------------------------------------------
    # page allocation / deallocation (Section 3.4)
    # ------------------------------------------------------------------
    def allocate_page(self, txn: Transaction,
                      page_type: PageType = PageType.DATA,
                      page_id: Optional[int] = None) -> int:
        """Allocate a data page **without reading its old version**.

        The format record's LSN is derived from the covering SMP's
        page_LSN (which the deallocation already pushed above the dead
        page's final LSN), so the reallocated page's LSN sequence keeps
        increasing even though we never saw the old image.
        """
        self._check_writable()
        self._check_active(txn)
        geometry = self.complex.space_map
        chosen = page_id
        if chosen is None:
            chosen = self._find_free_page()
            if chosen is None:
                raise ReproError("no free pages left")
        slot = geometry.slot_for(chosen)
        smp_page = self._access(slot.smp_page_id, for_update=True)
        try:
            if SpaceMap.read_allocated(smp_page, slot.index):
                raise ReproError(f"page {chosen} is already allocated")
            smp_record = LogRecord(
                kind=RecordKind.SMP_UPDATE, txn_id=txn.txn_id,
                page_id=slot.smp_page_id,
                slot=0,
                redo=encode_op(PageOp.SMP_SET,
                               SpaceMap.encode_entry_update(slot.index, True)),
                undo=encode_op(PageOp.SMP_SET,
                               SpaceMap.encode_entry_update(slot.index, False)),
                prev_lsn=txn.last_lsn,
            )
            SpaceMap.write_allocated(smp_page, slot.index, True)
            self._log_update(txn, smp_page, smp_record, already_applied=True)
            # The paper's trick: pass the SMP's (fresh) LSN as the hint
            # for the format record, guaranteeing it exceeds any LSN the
            # deallocated disk version may carry.
            fmt = make_format(
                txn_id=txn.txn_id, system_id=self.system_id,
                page_id=chosen, page_type=int(page_type),
                prev_lsn=txn.last_lsn,
            )
            addr = self.log.append(fmt, page_lsn=smp_page.page_lsn)
            txn.note_logged(fmt.lsn, addr.offset, undoable=False)
            fresh = Page()
            fresh.format(chosen, page_type, page_lsn=fmt.lsn)
            if self.pool.contains(chosen):
                # A stale cached copy of the dead page may linger, even
                # dirty; its content is moot once deallocated.
                self.pool.drop_page(chosen, allow_dirty=True)
            self.pool.install_page(fresh, dirty=False)
            # note_update performs the clean->dirty transition so the
            # format record becomes the page's RecAddr.
            self.pool.note_update(chosen, fmt.lsn, addr.offset,
                                  self.log.end_offset)
            self.pool.unfix(chosen)
            self.complex.coherency.note_new_page(self, chosen)
            self.stats.incr(PAGE_READS_AVOIDED)
            return chosen
        finally:
            self.pool.unfix(slot.smp_page_id)

    def deallocate_page(self, txn: Transaction, page_id: int) -> None:
        """Deallocate an (empty) page.

        The SMP update's LSN hint is the max of the SMP's LSN and the
        dead page's current LSN; the USN rule then guarantees the SMP
        LSN ends up above everything ever written to the page — the
        property reallocation relies on.
        """
        self._check_writable()
        self._check_active(txn)
        slot = self.complex.space_map.slot_for(page_id)
        page = self._access(page_id, for_update=True)
        try:
            if not page.is_empty():
                raise ReproError(f"page {page_id} is not empty")
            dead_page_lsn = page.page_lsn
        finally:
            self.pool.unfix(page_id)
        smp_page = self._access(slot.smp_page_id, for_update=True)
        try:
            if not SpaceMap.read_allocated(smp_page, slot.index):
                raise ReproError(f"page {page_id} is not allocated")
            record = LogRecord(
                kind=RecordKind.SMP_UPDATE, txn_id=txn.txn_id,
                page_id=slot.smp_page_id, slot=0,
                redo=encode_op(PageOp.SMP_SET,
                               SpaceMap.encode_entry_update(slot.index, False)),
                undo=encode_op(PageOp.SMP_SET,
                               SpaceMap.encode_entry_update(slot.index, True)),
                prev_lsn=txn.last_lsn,
            )
            SpaceMap.write_allocated(smp_page, slot.index, False)
            hint = max(smp_page.page_lsn, dead_page_lsn)
            self._log_update(txn, smp_page, record, already_applied=True,
                             lsn_hint=hint)
        finally:
            self.pool.unfix(slot.smp_page_id)

    def mass_delete(self, txn: Transaction, page_ids: Iterable[int]) -> int:
        """Deallocate many pages by visiting **only** their SMPs.

        This is DB2's segmented-tablespace mass delete (Section 4.2):
        one SMP_SET_RANGE log record per contiguous run per SMP page,
        and *no* data-page reads.  Returns the number of log records
        written.  Correctness of later reallocation rests on the lock
        value-block piggybacking: the table lock that protected the last
        updates of these pages carried the updater's Local_Max_LSN to
        us, so our SMP record's LSN exceeds every page's final LSN.
        """
        self._check_writable()
        self._check_active(txn)
        runs = self._contiguous_smp_runs(sorted(set(page_ids)))
        records = 0
        for smp_page_id, start, count in runs:
            smp_page = self._access(smp_page_id, for_update=True)
            try:
                record = LogRecord(
                    kind=RecordKind.SMP_UPDATE, txn_id=txn.txn_id,
                    page_id=smp_page_id, slot=0,
                    redo=encode_op(
                        PageOp.SMP_SET_RANGE,
                        SpaceMap.encode_range_update(start, count, False)),
                    undo=encode_op(
                        PageOp.SMP_SET_RANGE,
                        SpaceMap.encode_range_update(start, count, True)),
                    prev_lsn=txn.last_lsn,
                )
                SpaceMap.write_range(smp_page, start, count, False)
                self._log_update(txn, smp_page, record, already_applied=True)
                records += 1
            finally:
                self.pool.unfix(smp_page_id)
        return records

    def _contiguous_smp_runs(
        self, page_ids: List[int]
    ) -> List[Tuple[int, int, int]]:
        """Group sorted page ids into (smp_page, start_index, count) runs."""
        geometry = self.complex.space_map
        runs: List[Tuple[int, int, int]] = []
        for page_id in page_ids:
            slot = geometry.slot_for(page_id)
            if runs and runs[-1][0] == slot.smp_page_id and \
                    runs[-1][1] + runs[-1][2] == slot.index:
                smp, start, count = runs[-1]
                runs[-1] = (smp, start, count + 1)
            else:
                runs.append((slot.smp_page_id, slot.index, 1))
        return runs

    def is_allocated(self, page_id: int) -> bool:
        """Current allocation status of ``page_id`` (reads the SMP)."""
        slot = self.complex.space_map.slot_for(page_id)
        smp_page = self._access(slot.smp_page_id, for_update=False)
        try:
            return SpaceMap.read_allocated(smp_page, slot.index)
        finally:
            self.pool.unfix(slot.smp_page_id)

    def _find_free_page(self) -> Optional[int]:
        geometry = self.complex.space_map
        for smp_page_id in geometry.smp_page_ids():
            smp_page = self._access(smp_page_id, for_update=False)
            try:
                base = (smp_page_id - geometry.smp_start) * geometry.entries_per_page
                limit = min(geometry.entries_per_page,
                            geometry.n_data_pages - base)
                for index in range(limit):
                    if not SpaceMap.read_allocated(smp_page, index):
                        return geometry.data_start + base + index
            finally:
                self.pool.unfix(smp_page_id)
        return None

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _log_update(
        self,
        txn: Transaction,
        page: Page,
        record: LogRecord,
        already_applied: bool = False,
        lsn_hint: Optional[Lsn] = None,
    ) -> None:
        """Log ``record`` against ``page`` and do the USN bookkeeping.

        Implements the normal-processing steps of Section 3.2.1: pass
        the current page_LSN to the log manager, then place the returned
        LSN into the page header and the BCB.
        """
        if self.injector.enabled:
            # Mid-operation crash point: fired before the log append, so
            # a kill here leaves the log without the record while the
            # (volatile) page copy may already carry the change — the
            # change simply evaporates with the pool.
            self.injector.fire(fp.INSTANCE_UPDATE, system=self.system_id,
                               page=page.page_id, txn=txn.txn_id)
        page_lsn_prev = page.page_lsn
        hint = page_lsn_prev if lsn_hint is None else lsn_hint
        addr = self.log.append(record, page_lsn=hint)
        if not already_applied:
            op, data = decode_op(record.redo)
            apply_op(page, record.slot, op, data)
        stamp_page_lsn(page, record.lsn)
        self.pool.note_update(page.page_id, record.lsn, addr.offset,
                              self.log.end_offset)
        txn.note_logged(record.lsn, addr.offset,
                        undoable=record.is_undoable())
        if self.tracer.enabled:
            self.tracer.emit(
                ev.PAGE_UPDATE, system=self.system_id,
                page=page.page_id, slot=record.slot, txn=txn.txn_id,
                lsn=int(record.lsn), page_lsn_prev=int(page_lsn_prev),
                kind=record.kind.name,
            )

    def _lock_for_write(self, txn: Transaction, page_id: int, slot: int,
                        unfix_first: Optional[Page] = None) -> None:
        """Hierarchical write locking: page IX then record X (or one
        page X in page-granularity mode / after escalation)."""
        try:
            if self.lock_granularity == "page":
                self._lock(txn, page_lock(page_id), LockMode.X)
                return
            if page_id in txn.escalated_pages:
                return  # the page X lock covers every record
            self._lock(txn, page_lock(page_id), LockMode.IX)
            self._lock(txn, record_lock(page_id, slot), LockMode.X)
            self._maybe_escalate(txn, page_id)
        except LockWouldBlock:
            if unfix_first is not None:
                # Roll back the uncommitted in-page insert so the retry
                # starts clean (nothing was logged yet).
                if unfix_first.read_record(slot) is not None:
                    # reprolint: disable=R001 -- compensates an optimistic
                    # in-page insert that was never logged (see caller).
                    unfix_first.delete_record(slot)
            raise

    def _lock_for_read(self, txn: Transaction, page_id: int,
                       slot: int) -> List:
        """Hierarchical read locking: page IS then record S.

        Returns the resources a cursor-stability reader may release
        after the read (never a lock the transaction held already for
        other reasons, and never the intention lock, which is kept to
        commit — it is compatible with everything but X).
        """
        glm = self.complex.glm
        if self.lock_granularity == "page":
            resource = page_lock(page_id)
            held_before = glm.holds(txn.txn_id, resource)
            self._lock(txn, resource, LockMode.S)
            return [] if held_before else [resource]
        if page_id in txn.escalated_pages:
            return []
        self._lock(txn, page_lock(page_id), LockMode.IS)
        resource = record_lock(page_id, slot)
        held_before = glm.holds(txn.txn_id, resource)
        self._lock(txn, resource, LockMode.S)
        return [] if held_before else [resource]

    def _maybe_escalate(self, txn: Transaction, page_id: int) -> None:
        """Opportunistic record->page lock escalation.

        After ``escalation_threshold`` record locks on one page, try to
        convert the page intention lock to X; on success further record
        locks on the page are unnecessary.  Never waits — a conflicting
        reader simply postpones escalation.
        """
        if self.escalation_threshold is None:
            return
        count = txn.record_lock_counts.get(page_id, 0) + 1
        txn.record_lock_counts[page_id] = count
        if count < self.escalation_threshold:
            return
        status = self.complex.try_lock(self, txn.txn_id,
                                       page_lock(page_id), LockMode.X)
        if status is LockStatus.GRANTED:
            txn.escalated_pages.add(page_id)
            self.stats.incr(LOCK_ESCALATIONS)

    def _lock(self, txn: Transaction, resource, mode: LockMode) -> None:
        if self.lock_retry is None:
            status = self.complex.lock(self, txn.txn_id, resource, mode)
            if status is LockStatus.WAITING:
                raise LockWouldBlock(txn.txn_id, resource)
            return

        def attempt() -> None:
            status = self.complex.lock(self, txn.txn_id, resource, mode)
            if status is LockStatus.WAITING:
                raise LockWouldBlock(txn.txn_id, resource)

        def note_retry(_attempt: int) -> None:
            self.stats.incr(LOCK_RETRIES)

        try:
            run_with_lock_retry(self.lock_retry, attempt,
                                on_retry=note_retry)
        except LockTimeoutError:
            self.stats.incr(LOCK_RETRY_TIMEOUTS)
            raise

    def _access(self, page_id: int, for_update: bool) -> Page:
        self._check_up()
        return self.complex.coherency.access(self, page_id, for_update)

    def _check_up(self) -> None:
        if self.crashed:
            raise ReproError(f"system {self.system_id} is down")

    def _check_writable(self) -> None:
        """Reject updates and commits while in degraded mode.

        Reads are deliberately *not* gated: a log-device failure leaves
        stable state intact, so serving committed data read-only is
        safe — that is the whole point of degrading instead of failing.
        """
        self._check_up()
        if self.degraded:
            self.stats.incr(DEGRADED_REJECTIONS)
            raise DegradedModeError(
                f"system {self.system_id} is read-only (degraded)"
            )

    def _enter_degraded(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.stats.incr(DEGRADED_ENTRIES)
        if self.tracer.enabled:
            self.tracer.emit(ev.DEGRADED_ENTER, system=self.system_id,
                             reason=reason)

    def _check_active(self, txn: Transaction) -> None:
        self._check_up()
        if txn.state != TxnState.ACTIVE:
            raise ReproError(
                f"txn {txn.txn_id} is {txn.state.value}, not active"
            )

    def fix_page(self, page_id: int, for_update: bool = False) -> Page:
        """Fix a page through the coherency layer (public accessor for
        access methods like the B-tree that need page-level traversal).
        Pair with :meth:`unfix_page`."""
        return self._access(page_id, for_update)

    def unfix_page(self, page_id: int) -> None:
        """Release a pin taken by :meth:`fix_page`."""
        self.pool.unfix(page_id)

    def write_filler(self, n_records: int, payload_bytes: int = 64) -> None:
        """Grow this system's log without touching the database.

        Models unrelated workload on the system.  Under the naive
        scheme this inflates future LSNs (the Section 1.5 setup); under
        the USN scheme it advances ``Local_Max_LSN`` by one per record,
        creating LSN-rate skew for the Commit_LSN experiments (E2).
        """
        filler = b"x" * payload_bytes
        for _ in range(n_records):
            record = LogRecord(kind=RecordKind.DUMMY, redo=filler)
            self.log.append(record)

    # ------------------------------------------------------------------
    # failure
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """System failure: buffers, transaction state and the unforced
        log tail all evaporate.  Locks of in-flight transactions are
        *retained* by the global lock manager until restart recovery."""
        if self.degraded:
            # A restart replaces the failed log device; degraded mode
            # does not survive the crash/recovery cycle.
            self.degraded = False
            if self.tracer.enabled:
                self.tracer.emit(ev.DEGRADED_EXIT, system=self.system_id)
        self.crashed = True
        self.pool.crash()
        self.txns.crash()
        self.log.crash()
        self._pending_commits.clear()
        self.complex.coherency.note_crash(self.system_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DbmsInstance(system={self.system_id}, "
            f"crashed={self.crashed}, log={self.log!r})"
        )
