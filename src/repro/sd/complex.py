"""The shared-disks complex: Figure 1 as an object graph.

An :class:`SDComplex` owns the pieces every instance shares — the disk
farm, the global lock manager (with lock value blocks that piggyback
``Local_Max_LSN``), the coherency controller, the message fabric, the
space map geometry and the Commit_LSN service — plus the set of DBMS
instances.

Lock value blocks deserve a note: when a transaction releases a lock,
the releasing system's ``Local_Max_LSN`` is stored with the lock; when
another system later acquires it, its log manager absorbs that value.
This gives Lamport causality *through the lock hierarchy*: any update
protected by a lock happens-before a conflicting acquisition, so the
acquirer's LSNs are guaranteed to exceed the LSNs of the updates it can
now see.  (DEC's VAXcluster lock value blocks carried similar freight,
Section 4.1.)  Mass delete's correctness rests on this: the deleter
never reads the emptied pages, but the table lock it acquired carried
the last updater's maximum.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.recovery.instant import InstantRecoveryManager

from repro.common.errors import ReproError
from repro.common.lsn import Lsn
from repro.common.stats import StatsRegistry
from repro.faults.injector import NULL_INJECTOR, NullFaultInjector
from repro.faults.policy import RetryPolicy
from repro.locking.lock_manager import LockManager, LockMode, LockStatus
from repro.net.network import Network
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.recovery.commit_lsn import CommitLsnService
from repro.replication.shipper import (
    NULL_REPLICATION,
    ReplicationConfig,
    ReplicationManager,
)
from repro.sd.coherency import CoherencyController
from repro.sd.instance import DbmsInstance
from repro.storage.disk import SharedDisk
from repro.storage.page import Page, PageType
from repro.storage.space_map import SpaceMap
from repro.txn.manager import _SYSTEM_STRIDE

# Default database geometry: SMPs first, data pages after.
DEFAULT_SMP_START = 1
DEFAULT_DATA_START = 64
DEFAULT_DATA_PAGES = 4096


class SDComplex:
    """A complete shared-disks data sharing complex."""

    def __init__(
        self,
        n_data_pages: int = DEFAULT_DATA_PAGES,
        data_start: int = DEFAULT_DATA_START,
        smp_start: int = DEFAULT_SMP_START,
        disk_capacity: Optional[int] = None,
        piggyback_enabled: bool = True,
        lock_value_blocks: bool = True,
        transfer_scheme: str = "medium",
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
        net_retry: Optional[RetryPolicy] = None,
        lock_shards: int = 1,
        redo_parallelism: int = 1,
        slab: bool = True,
        replicate: Optional["ReplicationConfig"] = None,
        disk: Optional[SharedDisk] = None,
        restart_mode: str = "eager",
    ) -> None:
        if restart_mode not in ("eager", "instant"):
            raise ValueError(
                f"restart_mode must be 'eager' or 'instant', "
                f"got {restart_mode!r}"
            )
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        if self.injector.enabled:
            # A campaign-made injector reports into the same registries
            # the stack under test uses.
            self.injector.attach(stats=self.stats, tracer=self.tracer)
        if disk is not None:
            # Promotion path: adopt an already-populated disk (e.g. a
            # standby's replica image) instead of formatting a fresh one.
            self.disk = disk
        else:
            capacity = disk_capacity or (data_start + n_data_pages + 64)
            self.disk = SharedDisk(capacity=capacity, stats=self.stats,
                                   tracer=self.tracer,
                                   injector=self.injector, slab=slab)
        self.network = Network(stats=self.stats,
                               piggyback_enabled=piggyback_enabled,
                               tracer=self.tracer,
                               injector=self.injector,
                               retry=net_retry)
        self.lock_shards = lock_shards
        self.redo_parallelism = redo_parallelism
        if lock_shards > 1:
            # Scale-out GLM (lazy import: repro.cluster builds on this
            # module).  One shard keeps the monolithic manager — and
            # with it byte-identical traces for every existing scenario.
            from repro.cluster.glm import PartitionedLockManager

            self.glm = PartitionedLockManager(
                lock_shards, stats=self.stats, tracer=self.tracer,
                injector=self.injector)
        else:
            self.glm = LockManager(stats=self.stats, tracer=self.tracer)
        self.transfer_scheme = transfer_scheme
        self.coherency = CoherencyController(self, scheme=transfer_scheme)
        self.commit_lsn = CommitLsnService(stats=self.stats,
                                           tracer=self.tracer)
        self.space_map = SpaceMap(smp_start=smp_start, data_start=data_start,
                                  n_data_pages=n_data_pages)
        self.instances: Dict[int, DbmsInstance] = {}
        #: ``"eager"`` (classic full restart, the default — byte-
        #: identical to the pre-instant code path) or ``"instant"``
        #: (open after analysis + undo, recover pages on first touch;
        #: :mod:`repro.recovery.instant`).
        self.restart_mode = restart_mode
        #: Active instant-restart managers, keyed by recovering system.
        #: Empty on the classic path — every guard on it is a single
        #: truthiness test, keeping eager traces byte-identical.
        self.instant: Dict[int, "InstantRecoveryManager"] = {}
        self.lock_value_blocks = lock_value_blocks
        self._lock_values: Dict[Hashable, Lsn] = {}
        if disk is None:
            self._initialize_database()
        # The replication seam follows the NULL-object discipline: with
        # ``replicate=None`` the manager is NULL_REPLICATION
        # (enabled=False) and every call site stays byte-identical.
        self.replication = (ReplicationManager(self, replicate)
                            if replicate is not None else NULL_REPLICATION)

    def _initialize_database(self) -> None:
        """Format the space map pages (volume initialisation utility)."""
        for smp_page_id in self.space_map.smp_page_ids():
            page = Page()
            page.format(smp_page_id, PageType.SPACE_MAP)
            self.disk.write_page(page)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_instance(self, system_id: int, instance_cls=DbmsInstance,
                     **kwargs) -> DbmsInstance:
        """Bring a new DBMS instance into the complex.

        ``instance_cls`` lets experiments swap the LSN scheme (e.g.
        :class:`repro.baselines.naive.NaiveDbmsInstance`) while keeping
        every other component identical.
        """
        if system_id in self.instances:
            raise ReproError(f"system {system_id} already exists")
        if system_id <= 0:
            raise ValueError("system ids must be positive")
        instance = instance_cls(system_id, self, **kwargs)
        self.instances[system_id] = instance
        self.network.register(system_id, instance.log)
        self.commit_lsn.register(instance)
        return instance

    # ------------------------------------------------------------------
    # global locking (with value-block piggyback)
    # ------------------------------------------------------------------
    def lock(
        self,
        instance: DbmsInstance,
        txn_id: int,
        resource: Hashable,
        mode: LockMode,
    ) -> LockStatus:
        status = self.glm.acquire(txn_id, resource, mode)
        if status is LockStatus.GRANTED and self.lock_value_blocks:
            value = self._lock_values.get(resource)
            if value is not None:
                instance.log.observe_remote_max(value)
        return status

    def try_lock(
        self,
        instance: DbmsInstance,
        txn_id: int,
        resource: Hashable,
        mode: LockMode,
    ) -> LockStatus:
        """Opportunistic acquire: never enqueues (for escalation)."""
        status = self.glm.try_acquire(txn_id, resource, mode)
        if status is LockStatus.GRANTED and self.lock_value_blocks:
            value = self._lock_values.get(resource)
            if value is not None:
                instance.log.observe_remote_max(value)
        return status

    def release_lock(
        self, instance: DbmsInstance, txn_id: int, resource: Hashable
    ) -> None:
        self._store_lock_value(instance, resource)
        self.glm.release(txn_id, resource)

    def release_txn_locks(self, instance: DbmsInstance, txn_id: int) -> None:
        """Commit/abort-time release of everything a transaction holds."""
        for resource in self.glm.locks_of(txn_id):
            self._store_lock_value(instance, resource)
        self.glm.release_all(txn_id)

    def _store_lock_value(self, instance: DbmsInstance,
                          resource: Hashable) -> None:
        if not self.lock_value_blocks:
            return
        current = self._lock_values.get(resource, 0)
        self._lock_values[resource] = max(current,
                                          instance.log.local_max_lsn)

    def release_system_locks(self, system_id: int) -> None:
        """Drop the retained locks of a recovered system's transactions."""
        owners = [
            owner for owner in self._all_lock_owners()
            if isinstance(owner, int) and owner // _SYSTEM_STRIDE == system_id
        ]
        for owner in owners:
            self.glm.release_all(owner)

    def _all_lock_owners(self) -> List[Hashable]:
        return list(self.glm.owners())

    # ------------------------------------------------------------------
    # failure / recovery orchestration
    # ------------------------------------------------------------------
    def crash_instance(self, system_id: int) -> None:
        self.instances[system_id].crash()

    def restart_instance(self, system_id: int):
        """Run restart recovery for a crashed instance; returns the
        recovery summary.  Retained locks and page ownership are
        released once recovery completes.

        Under the medium transfer scheme this uses only the failed
        instance's local log (the paper's Section 3.1 payoff); under
        the fast scheme, redo replays the merged local logs for the
        pages the failed instance owned (Section 5 extension).
        """
        instance = self.instances[system_id]
        if not instance.crashed:
            raise ReproError(f"system {system_id} is not down")
        instance.crashed = False
        with self.tracer.span(ev.SPAN_RESTART, system=system_id,
                              target="instance"):
            if self.restart_mode == "instant":
                return self._instant_restart_instance(system_id, instance)
            return self._restart_instance(system_id, instance)

    def _restart_instance(self, system_id: int, instance: DbmsInstance):
        from repro.recovery.aries import fast_restart_recovery, restart_recovery

        if self.transfer_scheme == "fast":
            candidates = self.coherency.pages_owned_by(system_id)
            skip = set()
            for other_id, other in self.instances.items():
                if other_id == system_id or other.crashed:
                    continue
                for bcb in other.pool.pages():
                    if bcb.dirty:
                        skip.add(bcb.page_id)

            def fix_fast(page_id):
                from repro.common.errors import ProtocolError

                try:
                    return self.coherency.access(instance, page_id,
                                                 for_update=True)
                except ProtocolError:
                    # Complex-wide failure: the page's retained owner is
                    # another crashed system.  The merged-log redo pass
                    # above already reconstructed every analysis-DPT
                    # page into our pool, so undo can proceed on that
                    # version; the owner's own later recovery stays
                    # idempotent thanks to the page_LSN test.
                    return instance.pool.fix(page_id)

            summary = fast_restart_recovery(
                instance,
                [inst.log for inst in self.instances.values()],
                candidate_pages=candidates,
                skip_page_ids=skip,
                fix_page=fix_fast,
                unfix_page=instance.pool.unfix,
                redo_parallelism=self.redo_parallelism,
            )
        else:
            summary = restart_recovery(
                instance,
                fix_page=self.recovery_page_fixer(instance),
                unfix_page=instance.pool.unfix,
                redo_parallelism=self.redo_parallelism,
            )
        instance.pool.flush_all()
        # Cold cache after recovery: keeping reconstructed pages around
        # would require re-registering every copy with the coherency
        # layer and invites stale-read hazards; dropping them is simple
        # and what a real restart does anyway.
        for bcb in list(instance.pool.pages()):
            instance.pool.drop_page(bcb.page_id)
        self.coherency.note_recovered(system_id)
        self.release_system_locks(system_id)
        return summary

    def _instant_restart_instance(self, system_id: int,
                                  instance: DbmsInstance):
        """Instant restart: analysis + eager loser undo, then open —
        the redo scan becomes per-page chains recovered on first touch
        (:mod:`repro.recovery.instant`).

        The undo fixers are exactly the eager ones (coherency-mediated
        medium fixer / ``fix_fast``); the coherency-access guard and
        the pool's ``recovery_intercept`` make sure any touched pending
        page has its chain applied first, so CLR order, LSN hints and
        the final disk image match the eager path byte for byte.
        """
        from repro.cluster.redo import collect_local_redo, collect_merged_redo
        from repro.common.errors import ProtocolError
        from repro.recovery.instant import InstantRecoveryManager

        manager = InstantRecoveryManager(
            instance, mode=self.transfer_scheme, stats=self.stats,
            injector=self.injector, on_drained=self._instant_drained,
        )
        # Register before open: the eager undo below reaches pages
        # through the coherency layer, whose instant guard routes any
        # pending page back through this manager first.
        self.instant[system_id] = manager
        instance.pool.recovery_intercept = self.ensure_instant_recovered
        with self.tracer.span(ev.SPAN_RECOVERY, system=system_id,
                              mode="instant"):
            manager.analyze()
            if self.transfer_scheme == "fast":
                candidates = self.coherency.pages_owned_by(system_id)
                skip = set()
                for other_id, other in self.instances.items():
                    if other_id == system_id or other.crashed:
                        continue
                    for bcb in other.pool.pages():
                        if bcb.dirty:
                            skip.add(bcb.page_id)
                targets = (set(manager.dpt) | set(candidates)) - skip
                manager.index_chains(collect_merged_redo(
                    [inst.log for inst in self.instances.values()],
                    targets))

                def fix_fast(page_id):
                    try:
                        return self.coherency.access(instance, page_id,
                                                     for_update=True)
                    except ProtocolError:
                        return instance.pool.fix(page_id)

                fix_page = fix_fast
            else:
                manager.index_chains(collect_local_redo(
                    instance.log, manager.dpt,
                    manager.summary.redo_scan_start))
                fix_page = self.recovery_page_fixer(instance)
            summary = manager.open(fix_page=fix_page,
                                   unfix_page=instance.pool.unfix)
        instance.pool.flush_all()
        # Cold cache, same as the eager path: only undo-touched pages
        # are pooled at this point, and they just hit the disk.
        for bcb in list(instance.pool.pages()):
            instance.pool.drop_page(bcb.page_id)
        self.coherency.note_recovered(system_id)
        self.release_system_locks(system_id)
        return summary

    def ensure_instant_recovered(self, page_id: int) -> None:
        """Apply every active instant manager's pending chain for
        ``page_id`` before anyone reads or writes the page.

        Managers run in ascending system order — the same order
        ``restart_complex`` recovers instances in.  Under the medium
        scheme at most one system's chain can actually apply (the
        surrender disk write screens the others out), and under the
        fast scheme every manager's chain for a shared page is the same
        merged record list, so cross-manager order never changes the
        final bytes.
        """
        for system_id in sorted(self.instant):
            manager = self.instant.get(system_id)
            if manager is not None:
                manager.recover_page(page_id)

    def _instant_drained(self, manager: "InstantRecoveryManager") -> None:
        """Deregister a drained manager; drop the fix intercepts once
        the last one is gone."""
        drained = [
            system_id
            for system_id, registered in self.instant.items()
            if registered is manager
        ]
        for system_id in drained:
            del self.instant[system_id]
        if not self.instant:
            for instance in self.instances.values():
                instance.pool.recovery_intercept = None

    def instant_drain(self) -> int:
        """Run every active manager's sweeper to completion (ascending
        system order); returns the number of pages recovered."""
        total = 0
        for system_id in sorted(self.instant):
            manager = self.instant.get(system_id)
            if manager is not None:
                total += manager.drain()
        return total

    def recovery_page_fixer(self, instance: DbmsInstance):
        """Page accessor for a recovering instance's **undo** pass.

        Normally routes through the coherency layer (the loser's page
        may live, current, in another system's pool).  When the page's
        retained owner is *another crashed system*, its committed
        updates exist only in its stable log — the disk version is
        stale — so the page is first reconstructed from the merged
        stable logs (all covering records are forced: WAL for anything
        that reached disk or migrated, commit forces for the rest).
        The owner's own later recovery stays idempotent via the
        page_LSN test.
        """
        from repro.common.errors import ProtocolError
        from repro.recovery.apply import apply_redo
        from repro.wal.merge import merge_local_logs

        def fix_page(page_id: int):
            try:
                return self.coherency.access(instance, page_id,
                                             for_update=True)
            except ProtocolError:
                if instance.pool.contains(page_id):
                    instance.pool.drop_page(page_id, allow_dirty=True)
                page = self.disk.read_page(page_id)
                for _, record in merge_local_logs(self.local_logs()):
                    if record.page_id == page_id \
                            and record.lsn > page.page_lsn:
                        apply_redo(page, record)
                self.disk.write_page(page)
                return instance.pool.install_page(page, dirty=False)

        return fix_page

    def begin_staged_restart(self, system_id: int):
        """Start a staged restart ([Moha91]-style early access): call
        ``run_redo()`` to open the system for new transactions with only
        the losers' retained locks in force, then ``run_undo()``."""
        from repro.recovery.staged import StagedRestart

        return StagedRestart(self, self.instances[system_id])

    def crash_complex(self) -> None:
        """Every instance fails at once (site power loss)."""
        for instance in self.instances.values():
            if not instance.crashed:
                instance.crash()

    def restart_complex(self):
        """Recover every instance, one at a time (any order is fine:
        each instance's redo needs only its own log under the medium
        transfer scheme, and undo is per-transaction)."""
        summaries = {}
        with self.tracer.span(ev.SPAN_RESTART, system=0, target="complex"):
            for system_id in sorted(self.instances):
                if self.instances[system_id].crashed:
                    summaries[system_id] = self.restart_instance(system_id)
        return summaries

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def broadcast_max_lsns(self) -> None:
        """Periodic Section 3.5 exchange (on top of piggybacking)."""
        self.network.broadcast_max_lsns()

    def local_logs(self) -> List:
        """Every instance's log manager (media recovery input)."""
        return [inst.log for inst in self.instances.values()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SDComplex(instances={sorted(self.instances)}, "
            f"data_pages={self.space_map.n_data_pages})"
        )
