"""The naive scheme: LSN = local log address, per system, independently.

This is how a single-system WAL DBMS (DB2 of the era) assigns LSNs, and
Section 1.5 of the paper shows exactly how it corrupts recovery in SD:
a page updated in system S2 (whose log has grown long) carries a large
page_LSN to disk; a later committed update in S1 (short log) gets a
*smaller* LSN; if S1 then crashes before writing the page, restart redo
compares ``record.LSN (small) > page_LSN (large)?`` — no — and skips a
committed update.

:class:`NaiveDbmsInstance` is a drop-in :class:`~repro.sd.instance.
DbmsInstance` whose log manager ignores the page_LSN hint and remote
maxima; everything else (coherency, locking, ARIES) is identical, so
experiment E1 isolates the LSN-assignment rule as the only variable.
"""

from __future__ import annotations

from repro.common.lsn import LogAddress, Lsn
from repro.obs import events as ev
from repro.sd.instance import DbmsInstance
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


class NaiveLogManager(LogManager):
    """Assigns ``LSN = logical address of the record + 1``.

    Monotonic within this log (that much the paper grants the naive
    scheme) but unrelated to the LSNs other systems assign.
    """

    def append(self, record: LogRecord, page_lsn: Lsn = 0) -> LogAddress:
        # The naive scheme has no use for the page_LSN hint.
        record.lsn = self.end_offset + 1
        record.system_id = self.system_id
        self.local_max_lsn = record.lsn
        addr = self._append_bytes(record.to_bytes())
        if self.tracer.enabled:
            self.tracer.emit(
                ev.LOG_APPEND, system=self.system_id, lsn=int(record.lsn),
                kind=record.kind.name, txn=record.txn_id,
                page=record.page_id, offset=addr.offset,
            )
        return addr

    def observe_remote_max(self, remote_max_lsn: Lsn) -> None:
        """Naive systems do not exchange LSN maxima."""

    def recover_local_max(self) -> Lsn:
        self.local_max_lsn = 0
        for _, record in self.scan():
            self.local_max_lsn = max(self.local_max_lsn, record.lsn)
        return self.local_max_lsn


class NaiveDbmsInstance(DbmsInstance):
    """A DBMS instance wired to the naive log manager."""

    def __init__(self, system_id, sd_complex, **kwargs) -> None:
        super().__init__(system_id, sd_complex, **kwargs)
        naive = NaiveLogManager(system_id, stats=self.stats,
                                tracer=self.tracer)
        self.log = naive
        self.pool.log = naive
