"""Lomet's multi-log recovery scheme [Lome90] as a baseline.

Lomet's design (paper Section 4.2):

* each **page** has a private LSN sequence: every update sets
  ``page_LSN = previous + 1``;
* each log record stores the page's LSN *before* the update — the
  before-state identifier (**BSI**) — and redo applies a record iff
  ``page_LSN == BSI``;
* to keep the per-page sequence alive across deallocation, the space
  map entry for a deallocated page must store the page's **exact full
  LSN** (47–63× the 1-bit DB2 entry, depending on 6- vs 8-byte LSNs);
* merging local logs needs both the page number and the LSN compared,
  because a local log is not LSN-sorted;
* mass delete must discover every emptied page's current LSN, forcing
  a read of each page.

This module implements the scheme faithfully enough to *recover
correctly* — the point of the comparison is not that Lomet is wrong
(it isn't) but that it is more expensive on exactly the axes
experiments E3–E6 measure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.buffer.buffer_pool import BufferPool
from repro.common.config import NULL_LSN
from repro.common.errors import ReproError
from repro.common.lsn import LogAddress, Lsn
from repro.common.stats import StatsRegistry
from repro.storage.disk import SharedDisk
from repro.storage.image_copy import ImageCopy
from repro.storage.page import Page, PageType
from repro.storage.space_map import LometSpaceMap
from repro.wal.log_manager import LogManager
from repro.wal.merge import lomet_merge
from repro.wal.records import (
    LogRecord,
    PageOp,
    RecordKind,
    encode_op,
)
from repro.recovery.apply import apply_redo, stamp_page_lsn

_BSI_BYTES = 8


def bsi_of(record: LogRecord) -> Lsn:
    """The before-state identifier carried in a Lomet log record."""
    return int.from_bytes(record.extra[:_BSI_BYTES], "little")


class LometLogManager(LogManager):
    """Per-page LSN assignment: new LSN = page's previous LSN + 1.

    The record's ``extra`` field stores the BSI.  Note the consequence
    the paper highlights: successive records in this log, relating to
    different pages, may have lower as well as higher LSNs — there is
    no log-wide monotonicity to merge by.
    """

    def append(self, record: LogRecord, page_lsn: Lsn = NULL_LSN) -> LogAddress:
        record.extra = page_lsn.to_bytes(_BSI_BYTES, "little")
        record.lsn = page_lsn + 1
        record.system_id = self.system_id
        if record.lsn > self.local_max_lsn:
            self.local_max_lsn = record.lsn
        return self._append_bytes(record.to_bytes())

    def observe_remote_max(self, remote_max_lsn: Lsn) -> None:
        """Lomet's scheme has no cross-system LSN exchange."""


class LometComplex:
    """Shared disk + Lomet space map shared by several systems."""

    def __init__(
        self,
        n_data_pages: int = 2048,
        data_start: int = 64,
        smp_start: int = 1,
        lsn_bytes: int = 8,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.stats = stats if stats is not None else StatsRegistry()
        self.disk = SharedDisk(capacity=data_start + n_data_pages + 64,
                               stats=self.stats)
        self.space_map = LometSpaceMap(
            smp_start=smp_start, data_start=data_start,
            n_data_pages=n_data_pages, lsn_bytes=lsn_bytes,
        )
        self.systems: Dict[int, "LometSystem"] = {}
        for smp_page_id in self.space_map.smp_page_ids():
            page = Page()
            page.format(smp_page_id, PageType.LOMET_SPACE_MAP)
            self.disk.write_page(page)

    def add_system(self, system_id: int, **kwargs) -> "LometSystem":
        if system_id in self.systems:
            raise ReproError(f"system {system_id} already exists")
        system = LometSystem(system_id, self, **kwargs)
        self.systems[system_id] = system
        return system

    def local_logs(self) -> List[LogManager]:
        return [system.log for system in self.systems.values()]


class LometSystem:
    """One system running the Lomet scheme.

    Pages move between systems by forcing to disk first (the medium
    transfer scheme again), handled here by simply writing after every
    operation sequence via :meth:`flush` — the Lomet experiments are
    about logging/space/merge costs, not buffer coherency, so the
    engine keeps page handling deliberately minimal while remaining
    recovery-correct.
    """

    def __init__(self, system_id: int, complex_: LometComplex,
                 buffer_capacity: int = 128) -> None:
        self.system_id = system_id
        self.complex = complex_
        self.stats = complex_.stats
        self.log = LometLogManager(system_id, stats=self.stats)
        self.pool = BufferPool(complex_.disk, self.log,
                               capacity=buffer_capacity)

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------
    def insert(self, page_id: int, payload: bytes) -> int:
        page = self.pool.fix(page_id)
        try:
            slot = page.insert_record(payload)
            self._log(page, RecordKind.UPDATE, slot,
                      redo=encode_op(PageOp.INSERT, payload),
                      undo=encode_op(PageOp.DELETE))
            return slot
        finally:
            self.pool.unfix(page_id)

    def update(self, page_id: int, slot: int, payload: bytes) -> None:
        page = self.pool.fix(page_id)
        try:
            old = page.read_record(slot)
            if old is None:
                raise ReproError(f"page {page_id} slot {slot} is empty")
            page.update_record(slot, payload)
            self._log(page, RecordKind.UPDATE, slot,
                      redo=encode_op(PageOp.SET, payload),
                      undo=encode_op(PageOp.SET, old))
        finally:
            self.pool.unfix(page_id)

    def _log(self, page: Page, kind: RecordKind, slot: int,
             redo: bytes, undo: bytes = b"") -> LogRecord:
        record = LogRecord(kind=kind, page_id=page.page_id, slot=slot,
                           redo=redo, undo=undo)
        addr = self.log.append(record, page_lsn=page.page_lsn)
        stamp_page_lsn(page, record.lsn)
        self.pool.note_update(page.page_id, record.lsn, addr.offset,
                              self.log.end_offset)
        return record

    # ------------------------------------------------------------------
    # allocation — where Lomet pays (Section 4.2)
    # ------------------------------------------------------------------
    def allocate_page(self, page_type: PageType = PageType.DATA,
                      page_id: Optional[int] = None) -> int:
        """Reallocate a page using the SMP-stored exact LSN.

        Like the paper's scheme, no data-page read happens *here*; the
        cost was paid at deallocation time, when the exact LSN had to be
        captured into the (huge) SMP entry.
        """
        geometry = self.complex.space_map
        chosen = page_id if page_id is not None else self._find_free_page()
        if chosen is None:
            raise ReproError("no free pages left")
        slot = geometry.slot_for(chosen)
        smp_page = self.pool.fix(slot.smp_page_id)
        try:
            allocated, dealloc_lsn = geometry.read_entry(smp_page, slot.index)
            if allocated:
                raise ReproError(f"page {chosen} is already allocated")
            geometry.write_allocated(smp_page, slot.index)
            self._log(smp_page, RecordKind.SMP_UPDATE, 0,
                      redo=encode_op(PageOp.NOOP))
        finally:
            self.pool.unfix(slot.smp_page_id)
        fmt = LogRecord(kind=RecordKind.FORMAT_PAGE, page_id=chosen,
                        redo=encode_op(PageOp.FORMAT, bytes([int(page_type)])))
        addr = self.log.append(fmt, page_lsn=dealloc_lsn)
        fresh = Page()
        fresh.format(chosen, page_type, page_lsn=fmt.lsn)
        if self.pool.contains(chosen):
            # A stale buffered copy of the dead page may remain, even
            # dirty; its content is moot once deallocated.
            self.pool.drop_page(chosen, allow_dirty=True)
        self.pool.install_page(fresh, dirty=False)
        self.pool.note_update(chosen, fmt.lsn, addr.offset,
                              self.log.end_offset)
        self.pool.unfix(chosen)
        return chosen

    def deallocate_page(self, page_id: int) -> None:
        """Deallocation must capture the page's exact current LSN."""
        geometry = self.complex.space_map
        slot = geometry.slot_for(page_id)
        page = self.pool.fix(page_id)  # must see the page to know its LSN
        try:
            exact_lsn = page.page_lsn
        finally:
            self.pool.unfix(page_id)
        smp_page = self.pool.fix(slot.smp_page_id)
        try:
            geometry.write_deallocated(smp_page, slot.index, exact_lsn)
            self._log(smp_page, RecordKind.SMP_UPDATE, 0,
                      redo=encode_op(PageOp.NOOP))
        finally:
            self.pool.unfix(slot.smp_page_id)

    def mass_delete(self, page_ids: Iterable[int]) -> Tuple[int, int]:
        """Empty many pages at once.

        Unlike the DB2/USN fast path, every page must be **read** so
        its exact LSN can be recorded in the space map, and one SMP
        entry is written (and logged) per page.  Returns ``(page_reads,
        log_records)`` for experiment E6.
        """
        page_reads = 0
        log_records = 0
        for page_id in sorted(set(page_ids)):
            if not self.pool.contains(page_id):
                page_reads += 1
            self.deallocate_page(page_id)
            log_records += 1
        return page_reads, log_records

    def _find_free_page(self) -> Optional[int]:
        geometry = self.complex.space_map
        for smp_page_id in geometry.smp_page_ids():
            smp_page = self.pool.fix(smp_page_id)
            try:
                base = (smp_page_id - geometry.smp_start) * geometry.entries_per_page
                limit = min(geometry.entries_per_page,
                            geometry.n_data_pages - base)
                for index in range(limit):
                    allocated, _ = geometry.read_entry(smp_page, index)
                    if not allocated:
                        return geometry.data_start + base + index
            finally:
                self.pool.unfix(smp_page_id)
        return None

    def flush(self) -> None:
        self.pool.flush_all()


# ----------------------------------------------------------------------
# Lomet media recovery: redo iff page_LSN == BSI
# ----------------------------------------------------------------------
def lomet_recover_page(
    page_id: int,
    image_copy: Optional[ImageCopy],
    logs: Iterable[LogManager],
    stats: Optional[StatsRegistry] = None,
) -> Page:
    """Rebuild a page under Lomet's redo test, from the (page, LSN)
    merged stream."""
    if image_copy is not None and image_copy.has_page(page_id):
        page = image_copy.restore_page(page_id)
    else:
        page = Page()
        page.format(page_id, PageType.FREE)
    for _, record in lomet_merge(logs, stats=stats):
        if record.page_id != page_id:
            continue
        if page.page_lsn == bsi_of(record):
            apply_redo(page, record)
    return page
