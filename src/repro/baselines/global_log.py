"""VAXcluster-style single global log (paper Section 4.1).

DEC's VAX DBMS / Rdb/VMS kept **one global log on a shared disk** for
all systems.  Every transfer of records into the global log requires a
global lock to serialize space allocation — "acquiring a global lock
involves sending and receiving messages."  To amortize that, each
transaction first fills a process-private buffer, then moves records to
a per-system log cache, and only a log force (commit, or WAL before a
page write) pays the global lock.

Consequences the paper points out, both modelled here:

* the scheme works only because of **force-before-commit** (modified
  pages go to disk before commit is logged) and purely physical
  logging — cached records from two transactions on one system can
  reach the global log out of update order;
* every commit costs a global-lock round trip, which the USN scheme's
  private local logs avoid entirely (experiment E10).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.buffer.buffer_pool import BufferPool
from repro.common.errors import ReproError
from repro.common.stats import (
    GLOBAL_LOG_LOCK_MESSAGES,
    GLOBAL_LOG_LOCKS,
    MESSAGES_SENT,
    StatsRegistry,
)
from repro.storage.disk import SharedDisk
from repro.storage.page import Page, PageType
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, PageOp, RecordKind, encode_op


class _GlobalLog:
    """The single shared log file, guarded by a global lock."""

    def __init__(self, stats: StatsRegistry) -> None:
        self.stats = stats
        self.log = LogManager(system_id=0, stats=stats)

    def transfer(self, from_system: int, records: List[LogRecord]) -> None:
        """Move a system's cached records into the global log.

        One global-lock acquisition (two messages: request + grant) per
        transfer, regardless of how many records move — that is the
        amortization the VAX scheme relies on, and it is still one lock
        per force.
        """
        self.stats.incr(GLOBAL_LOG_LOCKS)
        self.stats.incr(MESSAGES_SENT, 2)
        self.stats.incr(GLOBAL_LOG_LOCK_MESSAGES, 2)
        for record in records:
            self.log.append(record)
        self.log.force()


class GlobalLogComplex:
    """A small SD complex whose systems share one global log."""

    def __init__(
        self,
        n_data_pages: int = 1024,
        data_start: int = 8,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.stats = stats if stats is not None else StatsRegistry()
        self.disk = SharedDisk(capacity=data_start + n_data_pages,
                               stats=self.stats)
        self.global_log = _GlobalLog(self.stats)
        self.systems: Dict[int, "GlobalLogSystem"] = {}
        self.data_start = data_start
        self.n_data_pages = n_data_pages

    def add_system(self, system_id: int) -> "GlobalLogSystem":
        if system_id in self.systems:
            raise ReproError(f"system {system_id} already exists")
        system = GlobalLogSystem(system_id, self)
        self.systems[system_id] = system
        return system

    def format_page(self, page_id: int) -> None:
        """Utility pre-format (allocation is out of scope here)."""
        page = Page()
        page.format(page_id, PageType.DATA)
        self.disk.write_page(page)


class GlobalLogSystem:
    """One system: private log cache, force-before-commit policy."""

    def __init__(self, system_id: int, complex_: GlobalLogComplex) -> None:
        self.system_id = system_id
        self.complex = complex_
        self.stats = complex_.stats
        # A throwaway local log manager exists only to satisfy the
        # buffer pool's WAL plumbing; the force path is overridden by
        # the force-before-commit discipline below.
        self._wal_stub = LogManager(system_id, stats=self.stats)
        self.pool = BufferPool(complex_.disk, self._wal_stub, capacity=64)
        self._log_cache: List[LogRecord] = []
        self._txn_dirty: Dict[int, List[int]] = {}
        self._usn = 0  # their page "USN" used only for buffer coherency

    # ------------------------------------------------------------------
    def update(self, txn_id: int, page_id: int, slot: int,
               payload: bytes) -> None:
        """Update a record; the log record goes to the local cache."""
        page = self.pool.fix(page_id)
        try:
            old = page.read_record(slot)
            if old is None:
                raise ReproError(f"page {page_id} slot {slot} is empty")
            page.update_record(slot, payload)
            self._usn += 1
            # reprolint: disable=R001 -- baseline abuses page_lsn as a
            # coherency USN; its recovery never consults the field.
            page.page_lsn = self._usn
            record = LogRecord(
                kind=RecordKind.UPDATE, txn_id=txn_id,
                page_id=page_id, slot=slot,
                redo=encode_op(PageOp.SET, payload),
                undo=encode_op(PageOp.SET, old),
            )
            self._log_cache.append(record)
            self.pool.bcb(page_id).dirty = True
            self._txn_dirty.setdefault(txn_id, []).append(page_id)
        finally:
            self.pool.unfix(page_id)

    def insert(self, txn_id: int, page_id: int, payload: bytes) -> int:
        page = self.pool.fix(page_id)
        try:
            slot = page.insert_record(payload)
            self._usn += 1
            # reprolint: disable=R001 -- coherency USN, as in update().
            page.page_lsn = self._usn
            record = LogRecord(
                kind=RecordKind.UPDATE, txn_id=txn_id,
                page_id=page_id, slot=slot,
                redo=encode_op(PageOp.INSERT, payload),
                undo=encode_op(PageOp.DELETE),
            )
            self._log_cache.append(record)
            self.pool.bcb(page_id).dirty = True
            self._txn_dirty.setdefault(txn_id, []).append(page_id)
            return slot
        finally:
            self.pool.unfix(page_id)

    def note_dirty(self, txn_id: int, page_id: int) -> None:
        self._txn_dirty.setdefault(txn_id, []).append(page_id)

    def commit(self, txn_id: int) -> None:
        """Force-before-commit: flush the transaction's pages to disk,
        then force the cached records plus the commit record to the
        global log (one global lock)."""
        for page_id in sorted(set(self._txn_dirty.pop(txn_id, []))):
            if self.pool.contains(page_id) and self.pool.is_dirty(page_id):
                self.pool.write_page(page_id)
        self._log_cache.append(
            LogRecord(kind=RecordKind.COMMIT, txn_id=txn_id)
        )
        self.complex.global_log.transfer(self.system_id, self._log_cache)
        self._log_cache = []

    def cached_record_count(self) -> int:
        return len(self._log_cache)
