"""Baseline schemes the paper argues against.

* :mod:`repro.baselines.naive` — LSN = local log address, assigned
  independently per system.  The pre-paper status quo; reproduces the
  Section 1.5 lost-update anomaly.
* :mod:`repro.baselines.lomet` — Lomet's before-state-identifier (BSI)
  scheme [Lome90]: per-page LSN sequences, redo iff equal, full LSNs in
  the space map, (page, LSN) log merge.  The Section 4.2 comparison.
* :mod:`repro.baselines.global_log` — a VAXcluster-style single global
  log guarded by a global lock, with the force-before-commit policy
  (Section 4.1).
"""

from repro.baselines.naive import NaiveDbmsInstance, NaiveLogManager
from repro.baselines.lomet import LometComplex, LometLogManager, LometSystem
from repro.baselines.global_log import GlobalLogComplex, GlobalLogSystem

__all__ = [
    "GlobalLogComplex",
    "GlobalLogSystem",
    "LometComplex",
    "LometLogManager",
    "LometSystem",
    "NaiveDbmsInstance",
    "NaiveLogManager",
]
