"""Workload generation and interleaved execution drivers."""

from repro.workload.generator import (
    OpKind,
    TxnScript,
    WorkloadConfig,
    build_scripts,
    populate_pages,
    run_interleaved_cs,
    run_interleaved_sd,
)

__all__ = [
    "OpKind",
    "TxnScript",
    "WorkloadConfig",
    "build_scripts",
    "populate_pages",
    "run_interleaved_cs",
    "run_interleaved_sd",
]
