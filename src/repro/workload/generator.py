"""Multi-system transaction workloads.

The experiments need deterministic, seedable workloads with the knobs
the paper's arguments turn on:

* **hot-page skew** — the more systems touch the same pages, the more
  cross-system page transfers and per-page LSN interleavings occur;
* **log-production-rate skew** — systems that log little keep a low
  ``Local_Max_LSN``; without the Section 3.5 exchange this drags the
  global Commit_LSN into the past (experiment E2);
* **interleaving** — transactions on different systems run concurrently
  (round-robin step scheduler), with lock waits and deadlocks handled
  the way a transaction monitor would (retry / rollback-and-rerun).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import DeadlockError, LockWouldBlock


class OpKind(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    FILLER = "filler"


@dataclass
class Op:
    kind: OpKind
    page_id: int = 0
    slot: int = 0
    payload: bytes = b""
    filler_records: int = 0
    use_commit_lsn: bool = False


@dataclass
class TxnScript:
    """One transaction's planned operations, bound to a system index."""

    system_index: int
    ops: List[Op] = field(default_factory=list)


@dataclass
class WorkloadConfig:
    """Knobs for :func:`build_scripts`."""

    n_transactions: int = 20
    ops_per_txn: int = 5
    read_fraction: float = 0.5
    # Of the non-read ops, this fraction are inserts of new records
    # (growing pages) instead of updates in place.
    insert_fraction: float = 0.0
    use_commit_lsn: bool = False
    payload_bytes: int = 32
    # Probability mass of touching a "hot" page vs a uniformly random one.
    hot_fraction: float = 0.5
    n_hot_pages: int = 2
    # filler_rates[i] = DUMMY records system i writes after each txn it
    # runs (the log-production-rate skew knob).
    filler_rates: Sequence[int] = ()
    seed: int = 42


def populate_pages(engine, n_pages: int, records_per_page: int,
                   payload_bytes: int = 32) -> List[Tuple[int, int]]:
    """Allocate pages and fill them with records; returns (page, slot)
    handles.  ``engine`` is a DbmsInstance or CsClient."""
    handles: List[Tuple[int, int]] = []
    txn = engine.begin()
    for _ in range(n_pages):
        page_id = engine.allocate_page(txn)
        for r in range(records_per_page):
            payload = bytes([r % 251] * payload_bytes)
            slot = engine.insert(txn, page_id, payload)
            handles.append((page_id, slot))
    engine.commit(txn)
    return handles


def build_scripts(
    config: WorkloadConfig,
    n_systems: int,
    handles: Sequence[Tuple[int, int]],
) -> List[TxnScript]:
    """Deterministically generate transaction scripts over ``handles``."""
    rng = random.Random(config.seed)
    hot = list(handles[: config.n_hot_pages])
    scripts: List[TxnScript] = []
    for t in range(config.n_transactions):
        system_index = t % n_systems
        script = TxnScript(system_index=system_index)
        for _ in range(config.ops_per_txn):
            if hot and rng.random() < config.hot_fraction:
                page_id, slot = rng.choice(hot)
            else:
                page_id, slot = rng.choice(list(handles))
            if rng.random() < config.read_fraction:
                script.ops.append(Op(
                    kind=OpKind.READ, page_id=page_id, slot=slot,
                    use_commit_lsn=config.use_commit_lsn,
                ))
            else:
                payload = bytes(
                    rng.randrange(1, 256) for _ in range(config.payload_bytes)
                )
                kind = OpKind.INSERT \
                    if rng.random() < config.insert_fraction \
                    else OpKind.UPDATE
                script.ops.append(Op(
                    kind=kind, page_id=page_id, slot=slot, payload=payload,
                ))
        rates = config.filler_rates
        if rates and system_index < len(rates) and rates[system_index]:
            script.ops.append(Op(
                kind=OpKind.FILLER, filler_records=rates[system_index],
            ))
        scripts.append(script)
    return scripts


@dataclass
class RunResult:
    committed: int = 0
    aborted_deadlock: int = 0
    lock_retries: int = 0
    reads: int = 0
    updates: int = 0


class _LiveTxn:
    __slots__ = ("script", "engine", "txn", "idx", "attempts")

    def __init__(self, script: TxnScript, engine) -> None:
        self.script = script
        self.engine = engine
        self.txn = None
        self.idx = 0
        self.attempts = 0


def _run_interleaved(
    engines: Sequence,
    scripts: Sequence[TxnScript],
    result: RunResult,
    execute_op: Callable,
    max_concurrent: int = 4,
    between_txns: Optional[Callable] = None,
) -> RunResult:
    """Round-robin step scheduler shared by the SD and CS drivers."""
    pending = list(scripts)
    live: List[_LiveTxn] = []
    stall_guard = 0
    while pending or live:
        while pending and len(live) < max_concurrent:
            script = pending.pop(0)
            live.append(_LiveTxn(script, engines[script.system_index]))
        progressed = False
        for entry in list(live):
            if entry.txn is None:
                entry.txn = entry.engine.begin()
            if entry.idx >= len(entry.script.ops):
                entry.engine.commit(entry.txn)
                result.committed += 1
                live.remove(entry)
                if between_txns is not None:
                    between_txns()
                progressed = True
                continue
            op = entry.script.ops[entry.idx]
            try:
                execute_op(entry.engine, entry.txn, op, result)
            except LockWouldBlock:
                result.lock_retries += 1
                continue
            except DeadlockError:
                entry.engine.rollback(entry.txn)
                result.aborted_deadlock += 1
                entry.txn = None
                entry.idx = 0
                entry.attempts += 1
                if entry.attempts > 10:
                    live.remove(entry)  # give up; counted as aborted
                progressed = True
                continue
            entry.idx += 1
            progressed = True
        if progressed:
            stall_guard = 0
        else:
            stall_guard += 1
            if stall_guard > 1000:
                raise RuntimeError(
                    "workload stalled: lock waits never resolved"
                )
    return result


def _execute_sd_op(instance, txn, op: Op, result: RunResult) -> None:
    if op.kind is OpKind.READ:
        instance.read(txn, op.page_id, op.slot,
                      use_commit_lsn=op.use_commit_lsn)
        result.reads += 1
    elif op.kind is OpKind.UPDATE:
        instance.update(txn, op.page_id, op.slot, op.payload)
        result.updates += 1
    elif op.kind is OpKind.INSERT:
        instance.insert(txn, op.page_id, op.payload)
        result.updates += 1
    elif op.kind is OpKind.FILLER:
        instance.write_filler(op.filler_records)


def run_interleaved_sd(
    instances: Sequence,
    scripts: Sequence[TxnScript],
    max_concurrent: int = 4,
    between_txns: Optional[Callable] = None,
) -> RunResult:
    """Drive transaction scripts against SD instances, interleaved."""
    return _run_interleaved(instances, scripts, RunResult(),
                            _execute_sd_op, max_concurrent, between_txns)


def _make_cs_executor(commit_lsn_service):
    def _execute(client, txn, op: Op, result: RunResult) -> None:
        if op.kind is OpKind.READ:
            client.read(txn, op.page_id, op.slot,
                        use_commit_lsn=op.use_commit_lsn,
                        commit_lsn_service=commit_lsn_service)
            result.reads += 1
        elif op.kind is OpKind.UPDATE:
            client.update(txn, op.page_id, op.slot, op.payload)
            result.updates += 1
        elif op.kind is OpKind.INSERT:
            client.insert(txn, op.page_id, op.payload)
            result.updates += 1
        elif op.kind is OpKind.FILLER:
            for _ in range(op.filler_records):
                # Clients have no filler path in the log; model unrelated
                # work as extra LSN consumption via a scratch record.
                client.log.local_max_lsn += 1
    return _execute


def run_interleaved_cs(
    clients: Sequence,
    scripts: Sequence[TxnScript],
    commit_lsn_service=None,
    max_concurrent: int = 4,
    between_txns: Optional[Callable] = None,
) -> RunResult:
    """Drive transaction scripts against CS clients, interleaved."""
    return _run_interleaved(clients, scripts, RunResult(),
                            _make_cs_executor(commit_lsn_service),
                            max_concurrent, between_txns)
