"""Seeded scale-out workload: cross-instance hot-page ping-pong.

The scale-out questions (bench S1, tests) need a workload whose
*sharing ratio* is a first-class knob: with N instances each owning a
private slice of the database, what fraction of operations touch a
small hot set every instance fights over?  Low sharing is the
shard-friendly regime (GLM shards and redo partitions stay disjoint);
high sharing maximises page ping-pong through the coherency layer and
cross-shard lock traffic.

Built on the primitives of :mod:`repro.workload.generator`: the same
``TxnScript``/``Op`` vocabulary, the same round-robin interleaved
driver with deadlock-retry, the same determinism discipline (one
``random.Random(seed)``, no wall clock).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.workload.generator import (
    Op,
    OpKind,
    RunResult,
    TxnScript,
    populate_pages,
    run_interleaved_sd,
)


@dataclass(frozen=True)
class ScaleoutConfig:
    """Knobs for :func:`build_scaleout_scripts` / :func:`run_scaleout`."""

    n_transactions: int = 48
    ops_per_txn: int = 6
    read_fraction: float = 0.4
    #: Probability an op targets the shared hot set instead of the
    #: running instance's private slice.
    sharing_ratio: float = 0.1
    n_hot_pages: int = 4
    #: Private pages per instance (each populated with records).
    pages_per_instance: int = 4
    records_per_page: int = 8
    payload_bytes: int = 24
    seed: int = 7


#: The two profiles bench S1 sweeps: near-disjoint working sets vs
#: everybody hammering the same hot pages.
LOW_SHARING = ScaleoutConfig(sharing_ratio=0.05)
HIGH_SHARING = ScaleoutConfig(sharing_ratio=0.75)


def populate_scaleout(sd, config: ScaleoutConfig) -> Tuple[
        List[Tuple[int, int]], Dict[int, List[Tuple[int, int]]]]:
    """Create the hot set plus one private page slice per instance.

    Returns ``(hot_handles, private_handles)`` where ``private_handles``
    maps each instance's *script index* (0-based position in the sorted
    instance list) to its (page, slot) handles.  All allocation runs on
    the first instance — allocation is not what the workload measures.
    """
    first = sd.instances[sorted(sd.instances)[0]]
    hot_pages = populate_pages(
        first, config.n_hot_pages, config.records_per_page,
        payload_bytes=config.payload_bytes)
    private: Dict[int, List[Tuple[int, int]]] = {}
    for index, _ in enumerate(sorted(sd.instances)):
        private[index] = populate_pages(
            first, config.pages_per_instance, config.records_per_page,
            payload_bytes=config.payload_bytes)
    return hot_pages, private


def build_scaleout_scripts(
    config: ScaleoutConfig,
    n_systems: int,
    hot_handles: Sequence[Tuple[int, int]],
    private_handles: Dict[int, List[Tuple[int, int]]],
) -> List[TxnScript]:
    """Deterministic transaction scripts with the sharing-ratio split.

    Transaction ``t`` runs on instance ``t % n_systems``; each op rolls
    the sharing die, then picks a handle from the hot set or from that
    instance's private slice.
    """
    rng = random.Random(config.seed)
    scripts: List[TxnScript] = []
    for t in range(config.n_transactions):
        system_index = t % n_systems
        script = TxnScript(system_index=system_index)
        own = private_handles[system_index]
        for _ in range(config.ops_per_txn):
            if hot_handles and rng.random() < config.sharing_ratio:
                page_id, slot = rng.choice(list(hot_handles))
            else:
                page_id, slot = rng.choice(own)
            if rng.random() < config.read_fraction:
                script.ops.append(
                    Op(kind=OpKind.READ, page_id=page_id, slot=slot))
            else:
                payload = bytes(
                    rng.randrange(1, 256)
                    for _ in range(config.payload_bytes))
                script.ops.append(Op(
                    kind=OpKind.UPDATE, page_id=page_id, slot=slot,
                    payload=payload,
                ))
        scripts.append(script)
    return scripts


def run_scaleout(sd, config: ScaleoutConfig) -> RunResult:
    """Populate, script and drive the scale-out workload on ``sd``."""
    hot, private = populate_scaleout(sd, config)
    scripts = build_scaleout_scripts(config, len(sd.instances), hot, private)
    instances = [sd.instances[sid] for sid in sorted(sd.instances)]
    return run_interleaved_sd(instances, scripts)
