"""Vectorized bulk-op workload driver (the TPS-headline lane).

The interleaved generator in :mod:`repro.workload.generator` issues one
engine call per op — the right shape for coherency/locking experiments,
and the wrong one for throughput: every record read or update pays a
full fix/lock/log round trip.  This module drives the same logical
workload through the batched engine lanes instead:

* :meth:`DbmsInstance.read_many <repro.sd.instance.DbmsInstance.read_many>`
  — one fix + one page S lock per distinct page for a whole batch;
* :meth:`DbmsInstance.update_many
  <repro.sd.instance.DbmsInstance.update_many>` — one page X lock and
  one fix per distinct page, one ``append_many`` for the batch's log
  records;
* group commit (``commit(lazy=True)`` + ``sync_commits``) — one log
  force covers ``group_commit_every`` transactions.

Both drivers (:func:`run_per_call`, :func:`run_bulk`) consume the same
deterministic :class:`TxnBatch` plan and leave the database in the same
logical state, so a benchmark can race them and then diff final record
payloads to prove the fast lane cut costs, not corners.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

__all__ = [
    "BulkConfig",
    "TxnBatch",
    "BulkRunResult",
    "build_batches",
    "run_per_call",
    "run_bulk",
]


@dataclass
class BulkConfig:
    """Knobs for :func:`build_batches`."""

    n_transactions: int = 32
    #: Ops per transaction == the vectorized batch size.
    ops_per_txn: int = 64
    read_fraction: float = 0.5
    payload_bytes: int = 32
    #: Probability mass of touching a "hot" handle vs a uniform one.
    hot_fraction: float = 0.5
    n_hot_pages: int = 2
    seed: int = 42


@dataclass
class TxnBatch:
    """One transaction's ops in columnar form: all reads, then all
    updates — the order both drivers execute them in."""

    reads: List[Tuple[int, int]] = field(default_factory=list)
    updates: List[Tuple[int, int, bytes]] = field(default_factory=list)

    def page_ids(self) -> Set[int]:
        """Every page this transaction touches (reads and updates)."""
        pages = {page_id for page_id, _ in self.reads}
        pages.update(page_id for page_id, _, _ in self.updates)
        return pages


@dataclass
class BulkRunResult:
    committed: int = 0
    reads: int = 0
    updates: int = 0
    #: Group-commit syncs issued (``run_bulk`` only; per-call commits
    #: force eagerly and never sync).
    syncs: int = 0


def build_batches(config: BulkConfig,
                  handles: Sequence[Tuple[int, int]]) -> List[TxnBatch]:
    """Deterministically plan ``n_transactions`` batches over the
    populated ``(page_id, slot)`` handles (same skew knobs as
    :func:`repro.workload.generator.build_scripts`)."""
    rng = random.Random(config.seed)
    hot = list(handles[: config.n_hot_pages])
    all_handles = list(handles)
    batches: List[TxnBatch] = []
    for _ in range(config.n_transactions):
        batch = TxnBatch()
        for _ in range(config.ops_per_txn):
            if hot and rng.random() < config.hot_fraction:
                page_id, slot = rng.choice(hot)
            else:
                page_id, slot = rng.choice(all_handles)
            if rng.random() < config.read_fraction:
                batch.reads.append((page_id, slot))
            else:
                payload = bytes(
                    rng.randrange(1, 256)
                    for _ in range(config.payload_bytes)
                )
                batch.updates.append((page_id, slot, payload))
        batches.append(batch)
    return batches


def run_per_call(engine, batches: Sequence[TxnBatch]) -> BulkRunResult:
    """The baseline: every op is its own engine call, every commit
    forces the log.  ``engine`` is a :class:`DbmsInstance
    <repro.sd.instance.DbmsInstance>`."""
    result = BulkRunResult()
    for batch in batches:
        txn = engine.begin()
        for page_id, slot in batch.reads:
            engine.read(txn, page_id, slot)
            result.reads += 1
        for page_id, slot, payload in batch.updates:
            engine.update(txn, page_id, slot, payload)
            result.updates += 1
        engine.commit(txn)
        result.committed += 1
    return result


def run_bulk(engine, batches: Sequence[TxnBatch],
             group_commit_every: int = 8) -> BulkRunResult:
    """The fast lane: one ``read_many`` + one ``update_many`` per
    transaction, lazy commits synced every ``group_commit_every``
    transactions (one log force per group).

    A lazy commit keeps its locks until the sync, so a batch whose page
    set intersects the pages held by the pending group must sync first
    — otherwise its page locks would block against transactions that
    are already (logically) committed.
    """
    if group_commit_every < 1:
        raise ValueError("group_commit_every must be >= 1")
    result = BulkRunResult()
    pending = 0
    held_pages: Set[int] = set()
    # Cursor-stability readers drop their page S locks at read_many
    # return, so only updated pages stay locked until the sync; under
    # repeatable read the read locks are held to commit too.
    holds_read_locks = getattr(engine, "isolation", "") == "repeatable_read"

    def sync() -> None:
        nonlocal pending
        if pending:
            engine.sync_commits()
            result.syncs += 1
            result.committed += pending
            pending = 0
            held_pages.clear()

    for batch in batches:
        touched = batch.page_ids()
        if held_pages & touched:
            sync()
        txn = engine.begin()
        values = engine.read_many(txn, batch.reads)
        result.reads += len(values)
        engine.update_many(txn, batch.updates)
        result.updates += len(batch.updates)
        engine.commit(txn, lazy=True)
        pending += 1
        if holds_read_locks:
            held_pages.update(touched)
        else:
            held_pages.update(page_id for page_id, _, _ in batch.updates)
        if pending >= group_commit_every:
            sync()
    sync()
    return result
