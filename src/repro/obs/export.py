"""Standard-format exporters: Chrome/Perfetto traces, Prometheus text.

Two one-way bridges out of the deterministic toolchain:

* :func:`to_perfetto` renders a trace as Chrome trace-event JSON (the
  format ``chrome://tracing`` and https://ui.perfetto.dev load):
  spans become ``"X"`` complete events with ``ts``/``dur`` in logical
  ticks, every other trace event becomes an ``"i"`` instant, and
  ``"M"`` metadata names the per-system tracks.  Logical ticks map
  onto the viewer's microsecond axis 1:1 — the absolute scale is
  meaningless, the causal shape is exact.
* :func:`to_prometheus` renders a :class:`~repro.common.stats.
  StatsRegistry` (or :class:`~repro.obs.metrics.MetricsRegistry`) in
  the Prometheus text exposition format, mapping labeled counters to
  label sets and histograms to cumulative ``_bucket``/``_sum``/
  ``_count`` series.

Both outputs are deterministic (sorted keys, stable ordering) so they
diff cleanly across runs, like everything else in ``repro.obs``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Tuple

from repro.common.stats import StatsRegistry
from repro.obs import events as ev
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import build_span_forest
from repro.obs.tracer import TraceEvent

_PID = 0  # one simulated process; systems are its threads (tracks)

#: Chrome trace-event phases this exporter emits.
_PHASES = ("X", "i", "M")


def to_perfetto(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Render a trace as a Chrome/Perfetto trace-event JSON object.

    Returns the document as a dict; dump it with
    :func:`dump_perfetto_json` (or ``json.dumps``) for a file Perfetto
    loads directly.
    """
    events = list(events)
    trace_events: List[Dict[str, Any]] = []
    systems = sorted({e.system for e in events})
    trace_events.append({
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro simulation"},
    })
    for system in systems:
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": system,
            "args": {"name": f"system {system}"},
        })
    open_spans: Dict[int, Tuple[TraceEvent, Dict[str, Any]]] = {}
    for event in events:
        if event.kind == ev.SPAN_BEGIN:
            args = {
                k: v for k, v in event.fields.items()
                if k not in ("span", "name")
            }
            open_spans[event.fields["span"]] = (event, args)
        elif event.kind == ev.SPAN_END:
            begun = open_spans.pop(event.fields.get("span", -1), None)
            if begun is None:
                continue
            begin, args = begun
            error = event.fields.get("error")
            if error is not None:
                args = dict(args, error=error)
            trace_events.append({
                "name": begin.fields["name"], "cat": "span", "ph": "X",
                "ts": begin.seq, "dur": event.seq - begin.seq,
                "pid": _PID, "tid": begin.system, "args": args,
            })
        else:
            trace_events.append({
                "name": event.kind, "cat": "event", "ph": "i",
                "ts": event.seq, "pid": _PID, "tid": event.system,
                "s": "t", "args": dict(event.fields),
            })
    # Unclosed spans (crash mid-span): emit zero-duration markers so
    # the viewer still shows where they opened.
    for span_id in sorted(open_spans):
        begin, args = open_spans[span_id]
        trace_events.append({
            "name": begin.fields["name"], "cat": "span", "ph": "X",
            "ts": begin.seq, "dur": 0, "pid": _PID, "tid": begin.system,
            "args": dict(args, unclosed=True),
        })
    trace_events.sort(key=lambda e: (e.get("ts", -1), e["tid"], e["name"]))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "logical ticks (trace seq)"},
    }


def dump_perfetto_json(doc: Dict[str, Any]) -> str:
    """Serialize a trace-event document deterministically."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def validate_perfetto(doc: Any) -> None:
    """Assert ``doc`` is structurally valid trace-event JSON.

    Checks the subset of the Chrome trace-event spec this exporter
    uses; raises ``ValueError`` on the first violation.  The schema
    test in ``tests/test_export.py`` runs this over real captures.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace-event JSON must be an object "
                         "with a 'traceEvents' array")
    entries = doc["traceEvents"]
    if not isinstance(entries, list):
        raise ValueError("'traceEvents' must be an array")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        phase = entry.get("ph")
        if phase not in _PHASES:
            raise ValueError(f"traceEvents[{i}]: unknown phase {phase!r}")
        if not isinstance(entry.get("name"), str):
            raise ValueError(f"traceEvents[{i}]: 'name' must be a string")
        for key in ("pid", "tid"):
            if not isinstance(entry.get(key), int):
                raise ValueError(
                    f"traceEvents[{i}]: {key!r} must be an integer")
        if phase in ("X", "i"):
            if not isinstance(entry.get("ts"), (int, float)):
                raise ValueError(
                    f"traceEvents[{i}]: 'ts' must be a number")
        if phase == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}]: 'dur' must be a number >= 0")
        args = entry.get("args")
        if args is not None and not isinstance(args, dict):
            raise ValueError(f"traceEvents[{i}]: 'args' must be an object")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABELED = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$")


def _metric_name(raw: str) -> str:
    """Sanitize a counter name into a legal Prometheus metric name."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def _label_str(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    quoted = ",".join(
        f'{_metric_name(k)}="{v}"' for k, v in pairs
    )
    return "{" + quoted + "}"


def _split_labeled(raw: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split ``name{k=v,...}`` (the MetricsRegistry labeled form)."""
    match = _LABELED.match(raw)
    if match is None:
        return raw, []
    pairs: List[Tuple[str, str]] = []
    for part in match.group("labels").split(","):
        key, _, value = part.partition("=")
        pairs.append((key.strip(), value.strip()))
    return match.group("name"), pairs


def to_prometheus(stats: StatsRegistry) -> str:
    """Render counters (and histograms) as Prometheus text exposition.

    Counter names are sanitized (``log.forces`` -> ``log_forces``);
    labeled counters (``net.messages{kind=page}``) become label sets;
    histograms become cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``.  Output order is deterministic.
    """
    lines: List[str] = []
    seen_types: set = set()
    for raw in sorted(stats.snapshot()):
        value = stats.get(raw)
        base, labels = _split_labeled(raw)
        name = _metric_name(base)
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{_label_str(labels)} {value}")
    if isinstance(stats, MetricsRegistry):
        for raw in sorted(stats.histograms()):
            hist = stats.histograms()[raw]
            name = _metric_name(raw)
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for index, edge in enumerate(hist.edges):
                cumulative += hist.counts[index]
                lines.append(
                    f'{name}_bucket{{le="{edge:g}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {hist.total}')
            lines.append(f"{name}_sum {hist.sum:g}")
            lines.append(f"{name}_count {hist.total}")
    return "\n".join(lines) + "\n"
