"""``python -m repro.trace`` — render, check, and capture traces.

Usage:

* ``python -m repro.trace trace.jsonl`` — ASCII per-system timeline
  plus summary tables;
* ``python -m repro.trace trace.jsonl --check`` — additionally run the
  invariant checker; exit status 1 if any invariant is violated;
* ``python -m repro.trace --capture e1-usn -o trace.jsonl`` — run a
  canned scenario (the Section 1.5 anomaly under USN or naive LSNs)
  under a recording tracer and save the JSONL;
* ``python -m repro.trace --bench BENCH_E1.json`` — re-render the
  tables of a saved benchmark result without re-running it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.harness.experiment import ExperimentResult
from repro.obs.capture import SCENARIOS, capture
from repro.obs.invariants import check_trace, render_violations
from repro.obs.timeline import render_timeline, summarize_trace
from repro.obs.tracer import load_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect repro trace files (JSONL) and bench results.",
    )
    parser.add_argument("trace", nargs="?", default=None,
                        help="trace file (JSONL) to render")
    parser.add_argument("--check", action="store_true",
                        help="run the invariant checker; exit 1 on violations")
    parser.add_argument("--capture", choices=SCENARIOS, default=None,
                        help="run a canned scenario under a recording tracer")
    parser.add_argument("-o", "--output", default=None,
                        help="where --capture writes its JSONL trace")
    parser.add_argument("--bench", default=None, metavar="BENCH_JSON",
                        help="re-render tables from a saved BENCH_*.json")
    parser.add_argument("--max-rows", type=int, default=0,
                        help="cap timeline rows (0 = unlimited)")
    parser.add_argument("--width", type=int, default=30,
                        help="timeline column width")
    return parser


def _render_bench(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    result = ExperimentResult.from_dict(data)
    print(result.render())
    if result.counters:
        print()
        print("-- counters --")
        for name in sorted(result.counters):
            print(f"  {name} = {result.counters[name]}")
    return 0


def _render_trace(path: str, check: bool, max_rows: int, width: int) -> int:
    events = load_trace(path)
    print(render_timeline(events, column_width=width, max_rows=max_rows))
    tables, _ = summarize_trace(events)
    for title, table in tables:
        print()
        print(f"-- {title} --")
        print(table.render())
    if check:
        violations = check_trace(events)
        print()
        print(render_violations(violations))
        return 1 if violations else 0
    return 0


def run(argv: Optional[List[str]] = None) -> int:
    """``main`` plus CLI plumbing: tolerate the reader going away.

    ``python -m repro.trace trace.jsonl | head`` closes our stdout
    mid-render; that is a normal way to use the tool, not an error.
    """
    try:
        return main(argv)
    except BrokenPipeError:
        # Re-point stdout at devnull so the interpreter's shutdown
        # flush does not raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.bench is not None:
        return _render_bench(args.bench)
    if args.capture is not None:
        tracer, summary = capture(args.capture)
        if args.output is not None:
            count = tracer.write(args.output)
            print(f"wrote {count} events to {args.output}")
        else:
            sys.stdout.write(tracer.dump_jsonl())
        print(json.dumps(summary, sort_keys=True), file=sys.stderr)
        return 0
    if args.trace is None:
        _build_parser().print_usage()
        return 2
    return _render_trace(args.trace, args.check, args.max_rows, args.width)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.trace
    raise SystemExit(run())
