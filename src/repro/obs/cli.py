"""``python -m repro.trace`` — render, check, profile, export traces.

Subcommands (all operate on saved JSONL traces):

* ``summary TRACE [--json] [--check]`` — per-system timeline plus
  summary tables; ``--json`` emits the metrics as JSON for scripting;
* ``spans TRACE [--depth N]`` — the reconstructed span forest with
  inclusive/exclusive tick costs;
* ``critical-path TRACE [--root NAME] [--txn ID]`` — the most
  expensive causal chain under the chosen root span, plus a top-N
  self-cost table;
* ``export TRACE --perfetto|--prom [-o FILE]`` — Chrome/Perfetto
  trace-event JSON, or Prometheus text exposition of the trace's
  summary metrics;
* ``diff TRACE_A TRACE_B`` — span-path tick deltas between two runs.

Legacy forms (kept for scripts and muscle memory):

* ``python -m repro.trace trace.jsonl [--check]`` — same as
  ``summary``;
* ``python -m repro.trace --capture e1-usn -o trace.jsonl`` — run a
  canned scenario under a recording tracer and save the JSONL;
* ``python -m repro.trace --bench BENCH_E1.json`` — re-render the
  tables of a saved benchmark result without re-running it.

A missing or empty trace file is a one-line diagnostic and exit
status 2, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.harness.experiment import ExperimentResult
from repro.obs.capture import SCENARIOS, capture
from repro.obs.diff import diff_traces, render_diff
from repro.obs.export import (
    dump_perfetto_json,
    to_perfetto,
    to_prometheus,
)
from repro.obs.invariants import check_trace, render_violations
from repro.obs.profile import (
    critical_path,
    render_critical_path,
    render_self_costs,
    select_root,
    self_costs,
)
from repro.obs.spans import build_span_forest, render_span_tree
from repro.obs.timeline import render_timeline, summarize_trace
from repro.obs.tracer import TraceEvent, load_trace

_SUBCOMMANDS = ("summary", "spans", "critical-path", "export", "diff")


def _load_trace_or_none(path: str) -> Optional[List[TraceEvent]]:
    """Load a trace; on a missing or empty file, print a one-line
    diagnostic to stderr and return None (callers exit 2)."""
    if not os.path.exists(path):
        print(f"repro.trace: no such trace file: {path}", file=sys.stderr)
        return None
    try:
        events = load_trace(path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro.trace: cannot read trace {path}: {exc}",
              file=sys.stderr)
        return None
    if not events:
        print(f"repro.trace: trace file is empty: {path}", file=sys.stderr)
        return None
    return events


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect repro trace files (JSONL) and bench results.",
        epilog=f"subcommands: {', '.join(_SUBCOMMANDS)} "
               "(python -m repro.trace <subcommand> --help)",
    )
    parser.add_argument("trace", nargs="?", default=None,
                        help="trace file (JSONL) to render")
    parser.add_argument("--check", action="store_true",
                        help="run the invariant checker; exit 1 on violations")
    parser.add_argument("--capture", choices=SCENARIOS, default=None,
                        help="run a canned scenario under a recording tracer")
    parser.add_argument("-o", "--output", default=None,
                        help="where --capture writes its JSONL trace")
    parser.add_argument("--bench", default=None, metavar="BENCH_JSON",
                        help="re-render tables from a saved BENCH_*.json")
    parser.add_argument("--max-rows", type=int, default=0,
                        help="cap timeline rows (0 = unlimited)")
    parser.add_argument("--width", type=int, default=30,
                        help="timeline column width")
    return parser


def _build_subparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect repro trace files (JSONL).",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    summary = subs.add_parser(
        "summary", help="timeline + summary tables (add --json for JSON)")
    summary.add_argument("trace")
    summary.add_argument("--json", action="store_true",
                         help="emit the summary metrics as JSON")
    summary.add_argument("--check", action="store_true")
    summary.add_argument("--max-rows", type=int, default=0)
    summary.add_argument("--width", type=int, default=30)

    spans = subs.add_parser(
        "spans", help="reconstructed span forest with tick costs")
    spans.add_argument("trace")
    spans.add_argument("--depth", type=int, default=0,
                       help="prune the tree below this depth (0 = all)")

    crit = subs.add_parser(
        "critical-path", help="most expensive causal chain + self costs")
    crit.add_argument("trace")
    crit.add_argument("--root", default=None, metavar="NAME",
                      help="root span name to profile (default: costliest)")
    crit.add_argument("--txn", type=int, default=None,
                      help="filter roots by their txn attribute")
    crit.add_argument("--top", type=int, default=10,
                      help="rows in the self-cost table (0 = all)")

    export = subs.add_parser(
        "export", help="convert to Perfetto JSON or Prometheus text")
    export.add_argument("trace")
    fmt = export.add_mutually_exclusive_group(required=True)
    fmt.add_argument("--perfetto", action="store_true",
                     help="Chrome/Perfetto trace-event JSON")
    fmt.add_argument("--prom", action="store_true",
                     help="Prometheus text exposition of summary metrics")
    export.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")

    diff = subs.add_parser(
        "diff", help="span-path tick deltas between two traces")
    diff.add_argument("trace_a")
    diff.add_argument("trace_b")
    diff.add_argument("--top", type=int, default=15,
                      help="rows shown (0 = all)")
    diff.add_argument("--all", action="store_true", dest="all_paths",
                      help="include unchanged paths")
    return parser


def _render_bench(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    result = ExperimentResult.from_dict(data)
    print(result.render())
    if result.counters:
        print()
        print("-- counters --")
        for name in sorted(result.counters):
            print(f"  {name} = {result.counters[name]}")
    return 0


def _render_trace(path: str, check: bool, max_rows: int, width: int) -> int:
    events = _load_trace_or_none(path)
    if events is None:
        return 2
    print(render_timeline(events, column_width=width, max_rows=max_rows))
    tables, _ = summarize_trace(events)
    for title, table in tables:
        print()
        print(f"-- {title} --")
        print(table.render())
    if check:
        violations = check_trace(events)
        print()
        print(render_violations(violations))
        return 1 if violations else 0
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    events = _load_trace_or_none(args.trace)
    if events is None:
        return 2
    if args.json:
        tables, metrics = summarize_trace(events)
        payload = {
            "events": len(events),
            "systems": sorted({e.system for e in events}),
            "metrics": metrics.snapshot_all(),
        }
        if args.check:
            violations = check_trace(events)
            payload["violations"] = [
                {"invariant": v.invariant, "seq": v.seq,
                 "system": v.system, "message": v.message}
                for v in violations
            ]
            print(json.dumps(payload, sort_keys=True, indent=2))
            return 1 if violations else 0
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    return _render_trace(args.trace, args.check, args.max_rows, args.width)


def _cmd_spans(args: argparse.Namespace) -> int:
    events = _load_trace_or_none(args.trace)
    if events is None:
        return 2
    forest = build_span_forest(events)
    print(render_span_tree(forest, max_depth=args.depth))
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    events = _load_trace_or_none(args.trace)
    if events is None:
        return 2
    forest = build_span_forest(events)
    root = select_root(forest, name=args.root, txn=args.txn)
    if root is None:
        wanted = args.root or "any"
        print(f"repro.trace: no matching root span "
              f"(name={wanted}, txn={args.txn})", file=sys.stderr)
        return 1
    print(render_critical_path(critical_path(root)))
    print()
    print(render_self_costs(self_costs([root]), top=args.top))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    events = _load_trace_or_none(args.trace)
    if events is None:
        return 2
    if args.perfetto:
        text = dump_perfetto_json(to_perfetto(events))
    else:
        _, metrics = summarize_trace(events)
        text = to_prometheus(metrics)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    events_a = _load_trace_or_none(args.trace_a)
    if events_a is None:
        return 2
    events_b = _load_trace_or_none(args.trace_b)
    if events_b is None:
        return 2
    deltas = diff_traces(events_a, events_b)
    print(render_diff(deltas, top=args.top, all_paths=args.all_paths))
    return 0


_DISPATCH = {
    "summary": _cmd_summary,
    "spans": _cmd_spans,
    "critical-path": _cmd_critical_path,
    "export": _cmd_export,
    "diff": _cmd_diff,
}


def run(argv: Optional[List[str]] = None) -> int:
    """``main`` plus CLI plumbing: tolerate the reader going away.

    ``python -m repro.trace trace.jsonl | head`` closes our stdout
    mid-render; that is a normal way to use the tool, not an error.
    """
    try:
        return main(argv)
    except BrokenPipeError:
        # Re-point stdout at devnull so the interpreter's shutdown
        # flush does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SUBCOMMANDS:
        args = _build_subparser().parse_args(argv)
        return _DISPATCH[args.command](args)
    args = _build_parser().parse_args(argv)
    if args.bench is not None:
        return _render_bench(args.bench)
    if args.capture is not None:
        tracer, summary = capture(args.capture)
        if args.output is not None:
            count = tracer.write(args.output)
            print(f"wrote {count} events to {args.output}")
        else:
            sys.stdout.write(tracer.dump_jsonl())
        print(json.dumps(summary, sort_keys=True), file=sys.stderr)
        return 0
    if args.trace is None:
        _build_parser().print_usage()
        return 2
    return _render_trace(args.trace, args.check, args.max_rows, args.width)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.trace
    raise SystemExit(run())
