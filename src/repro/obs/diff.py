"""Span-level trace diffing: where did the ticks go?

Compares two traces of the *same scenario* (redo at P=1 vs P=4, a
faulted vs a clean run, before vs after an optimization) span-by-span.
Spans are aggregated by **path** — the ``/``-joined chain of span
names from the root (``recovery/redo/redo_part``) — since span ids are
run-local but the causal shape is what should match across runs.

Determinism makes this sharp: two runs of one scenario produce
byte-identical traces, so *any* non-empty diff is a real behavioural
difference, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.obs.spans import SpanNode, build_span_forest
from repro.obs.tracer import TraceEvent


@dataclass(frozen=True)
class PathDelta:
    """Aggregate difference for one span path between two traces."""

    path: str
    count_a: int
    count_b: int
    ticks_a: int
    ticks_b: int

    @property
    def delta(self) -> int:
        """Inclusive-tick change (B minus A)."""
        return self.ticks_b - self.ticks_a


def aggregate_paths(
    forest: Iterable[SpanNode],
) -> Dict[str, Tuple[int, int]]:
    """``path -> (span count, total inclusive ticks)`` for a forest."""
    result: Dict[str, Tuple[int, int]] = {}

    def visit(node: SpanNode, prefix: str) -> None:
        path = f"{prefix}/{node.name}" if prefix else node.name
        count, ticks = result.get(path, (0, 0))
        result[path] = (count + 1, ticks + node.inclusive)
        for child in node.children:
            visit(child, path)

    for root in forest:
        visit(root, "")
    return result


def diff_traces(
    events_a: Iterable[TraceEvent],
    events_b: Iterable[TraceEvent],
) -> List[PathDelta]:
    """Span-path deltas between two traces, biggest |delta| first.

    Paths present in only one trace appear with zero count/ticks on
    the other side.  Ties sort by path for deterministic output.
    """
    paths_a = aggregate_paths(build_span_forest(events_a))
    paths_b = aggregate_paths(build_span_forest(events_b))
    deltas = [
        PathDelta(
            path=path,
            count_a=paths_a.get(path, (0, 0))[0],
            count_b=paths_b.get(path, (0, 0))[0],
            ticks_a=paths_a.get(path, (0, 0))[1],
            ticks_b=paths_b.get(path, (0, 0))[1],
        )
        for path in sorted(set(paths_a) | set(paths_b))
    ]
    deltas.sort(key=lambda d: (-abs(d.delta), d.path))
    return deltas


def render_diff(
    deltas: List[PathDelta], top: int = 15, all_paths: bool = False
) -> str:
    """ASCII diff table.

    By default only changed paths are shown (``all_paths=True`` keeps
    the identical ones too) and the list is cut at ``top`` rows
    (0 = unlimited).
    """
    rows = deltas if all_paths else [d for d in deltas if d.delta
                                     or d.count_a != d.count_b]
    if not rows:
        return "(no span differences)"
    shown = rows[:top] if top else rows
    width = max(len(d.path) for d in shown)
    width = max(width, len("span path"))
    lines = [
        f"{'span path':<{width}}  {'count A':>7}  {'count B':>7}"
        f"  {'ticks A':>8}  {'ticks B':>8}  {'delta':>8}"
    ]
    for d in shown:
        lines.append(
            f"{d.path:<{width}}  {d.count_a:>7}  {d.count_b:>7}"
            f"  {d.ticks_a:>8}  {d.ticks_b:>8}  {d.delta:>+8}"
        )
    if top and len(rows) > top:
        lines.append(f"... ({len(rows) - top} more paths)")
    return "\n".join(lines)
