"""Labeled counters and fixed-bucket histograms on top of StatsRegistry.

The plain :class:`~repro.common.stats.StatsRegistry` reports end-of-run
totals; that is enough for the paper's avoided-cost arguments but not
for distribution-shaped questions ("how long do lock waits get?", "how
many hops does a page make?").  :class:`MetricsRegistry` is a drop-in
``StatsRegistry`` — every subsystem accepts it through the existing
``stats=`` parameter — that adds:

* **labeled counters**: ``incr_labeled("net.messages", kind="page")``
  materializes the canonical counter ``net.messages{kind=page}`` so
  label sets diff/snapshot like any other counter;
* **histograms**: fixed, explicit bucket edges with Prometheus-style
  *less-than-or-equal* semantics — a value equal to an edge lands in
  exactly that edge's bucket, values above the last edge land in the
  overflow bucket, and negative values are rejected (counters and
  distributions here only ever measure non-negative quantities).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.stats import StatsRegistry

#: Default bucket upper edges: roughly logarithmic, good for counts of
#: ticks, hops, comparisons, or bytes-per-message at simulation scale.
DEFAULT_EDGES: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 250, 1000)

# Canonical metric names used by the trace summarizer (rule R006:
# counter names live in constants, never inline literals).
TRACE_EVENTS = "trace.events"
TRACE_MESSAGE_BYTES = "trace.message_bytes"


class Histogram:
    """A fixed-bucket histogram with ``le`` (inclusive) upper edges.

    Bucket ``i`` counts values ``v`` with ``edges[i-1] < v <= edges[i]``;
    one extra overflow bucket counts ``v > edges[-1]``.
    """

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = tuple(float(e) for e in edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket edges must be strictly increasing")
        if ordered[0] < 0:
            raise ValueError("bucket edges must be non-negative")
        self.name = name
        self.edges: Tuple[float, ...] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (must be >= 0)."""
        if value < 0:
            raise ValueError(
                f"histogram {self.name!r} rejects negative value {value!r}"
            )
        # bisect_left finds the first edge >= value, i.e. the unique
        # bucket whose ``le`` edge covers it (boundary values included).
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def bucket_label(self, index: int) -> str:
        """Human-readable label for bucket ``index``."""
        if index >= len(self.edges):
            return f">{self.edges[-1]:g}"
        return f"<={self.edges[index]:g}"

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly dump (edges, per-bucket counts, total, sum)."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, total={self.total})"


def labeled_name(name: str, labels: Dict[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` counter name (labels sorted by key)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry(StatsRegistry):
    """A StatsRegistry with labeled counters and histograms."""

    def __init__(self) -> None:
        super().__init__()
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # labeled counters
    # ------------------------------------------------------------------
    def incr_labeled(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Increment the counter ``name{labels}`` by ``amount``."""
        self.incr(labeled_name(name, labels), amount)

    def get_labeled(self, name: str, **labels: Any) -> int:
        return self.get(labeled_name(name, labels))

    # ------------------------------------------------------------------
    # histograms
    # ------------------------------------------------------------------
    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the histogram ``name``.

        The bucket layout is fixed at creation; passing different
        ``edges`` for an existing histogram is an error (silent layout
        drift would corrupt every later observation).
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name, DEFAULT_EDGES if edges is None else edges)
            self._histograms[name] = hist
        elif edges is not None and tuple(float(e) for e in edges) != hist.edges:
            raise ValueError(
                f"histogram {name!r} already exists with different edges"
            )
        return hist

    def observe(
        self,
        name: str,
        value: float,
        edges: Optional[Sequence[float]] = None,
    ) -> None:
        """Observe ``value`` into histogram ``name`` (created on first use)."""
        self.histogram(name, edges).observe(value)

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero counters *and* drop histograms (between phases)."""
        super().reset()
        self._histograms.clear()

    def snapshot_all(self) -> Dict[str, Any]:
        """Counters plus histogram snapshots, for JSON reports."""
        return {
            "counters": self.snapshot(),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self._histograms.items())
            },
        }
