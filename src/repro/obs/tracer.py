"""The trace event bus: deterministic logical-time spans and events.

Every instrumented subsystem emits :class:`TraceEvent`\\ s through a
tracer.  Logical time is a single global sequence number (``seq``)
assigned in emission order — emission order *is* the simulation's
happened-before order because the simulation is single-threaded — plus,
for systems that registered their :class:`~repro.common.clock.
SkewedClock`, that clock's (deliberately skewed) reading.  Wall clocks
are banned here as everywhere else (rule R002): two runs with the same
seed must produce byte-identical traces, which is what lets a trace
double as a golden regression artifact.

The default tracer is :data:`NULL_TRACER`, whose :meth:`NullTracer.emit`
does nothing; hot paths additionally guard event construction behind
``tracer.enabled`` so tracing-off costs one attribute read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.common.clock import SkewedClock
from repro.obs.events import SPAN_BEGIN, SPAN_END


def _jsonable(value: Any) -> Any:
    """Coerce a field value into a canonical JSON-serializable form."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, bytes):
        return "0x" + value.hex()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass(frozen=True)
class TraceEvent:
    """One structured event at a point in logical time.

    ``clock``/``ticks`` are the emitting system's skewed clock reading
    and raw tick count at emission (``None`` when the system never
    registered a clock — e.g. the global lock manager, system 0).
    """

    seq: int
    system: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)
    clock: Optional[float] = None
    ticks: Optional[int] = None

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "sys": self.system,
            "kind": self.kind,
            "f": self.fields,
        }
        if self.clock is not None:
            payload["clock"] = self.clock
            payload["ticks"] = self.ticks
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        data = json.loads(line)
        return cls(
            seq=data["seq"],
            system=data["sys"],
            kind=data["kind"],
            fields=dict(data.get("f", {})),
            clock=data.get("clock"),
            ticks=data.get("ticks"),
        )


class _NullSpan:
    """The no-op span handle: a reusable context manager.

    Shared process-wide (it holds no state), so ``NullTracer.span()``
    allocates nothing — tracing-off span sites cost one method call and
    two no-op ``__enter__``/``__exit__`` calls.
    """

    #: Null spans have no identity; profile code treats -1 as "absent".
    span_id: int = -1

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


#: Shared no-op span handle returned by :meth:`NullTracer.span`.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: swallows everything.

    Subsystems hold a tracer unconditionally; with the null tracer the
    per-event cost is one ``enabled`` check (call sites guard on it) or
    one no-op method call.
    """

    enabled: bool = False

    def register_clock(self, system_id: int, clock: SkewedClock) -> None:
        """Associate a system's skewed clock with its events (no-op)."""

    def emit(self, kind: str, /, system: int = 0, **fields: Any) -> None:
        """Record one event (no-op).

        ``kind`` is positional-only so payload fields may themselves be
        named ``kind`` (e.g. a log record's kind on a page update).
        """

    def span(
        self,
        name: str,
        /,
        system: int = 0,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> "_NullSpan":
        """Open a causal span (no-op): returns the shared null handle."""
        return NULL_SPAN

    def span_begin(
        self,
        name: str,
        /,
        system: int = 0,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> "_NullSpan":
        """Manually open a span (no-op).  Pair with :meth:`span_end`."""
        return NULL_SPAN

    def span_end(self, handle: "_NullSpan", **attrs: Any) -> None:
        """Manually close a span opened by :meth:`span_begin` (no-op)."""

    def events(self) -> List[TraceEvent]:
        return []


#: Shared process-wide null tracer; safe because it holds no state.
NULL_TRACER = NullTracer()


class SpanHandle(_NullSpan):
    """An open span on a recording tracer.

    Use as a context manager (``with tracer.span(...):``) — ``__exit__``
    emits the paired ``span.end`` even when the block raises, tagging
    the end event with ``error=<ExceptionName>`` so chaos traces keep
    the pairing invariant.  Lint rule R013 enforces the ``with`` usage;
    the manual :meth:`Tracer.span_begin`/:meth:`Tracer.span_end` escape
    hatch exists for spans that outlive one lexical block.
    """

    __slots__ = ("tracer", "span_id", "name", "system", "_closed")

    def __init__(
        self, tracer: "Tracer", span_id: int, name: str, system: int
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.name = name
        self.system = system
        self._closed = False

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.tracer.span_end(self, error=exc_type.__name__)
        else:
            self.tracer.span_end(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"SpanHandle({self.name!r}, id={self.span_id}, {state})"


class Tracer(NullTracer):
    """A recording tracer: collects events and serializes them to JSONL.

    Registering a system's :class:`SkewedClock` makes that system's
    events carry clock readings; each emission also advances the clock
    one tick, so traces show per-system logical clocks drifting apart
    exactly as the paper assumes.  (No recovery-relevant code reads
    these clocks, so ticking them is observably free.)
    """

    enabled = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._clocks: Dict[int, SkewedClock] = {}
        self._seq = 0
        self._span_seq = 0
        self._span_stack: List[SpanHandle] = []

    def register_clock(self, system_id: int, clock: SkewedClock) -> None:
        self._clocks[system_id] = clock

    def emit(self, kind: str, /, system: int = 0, **fields: Any) -> None:
        self._seq += 1
        clock = self._clocks.get(system)
        reading: Optional[float] = None
        ticks: Optional[int] = None
        if clock is not None:
            clock.tick()
            reading = clock.now()
            ticks = clock.ticks
        self._events.append(
            TraceEvent(
                seq=self._seq,
                system=system,
                kind=kind,
                fields={k: _jsonable(v) for k, v in fields.items()},
                clock=reading,
                ticks=ticks,
            )
        )

    # -- spans ---------------------------------------------------------
    def span(
        self,
        name: str,
        /,
        system: int = 0,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> SpanHandle:
        """Open a causal span: emits ``span.begin`` now and the paired
        ``span.end`` when the returned handle's ``with`` block exits.

        Span ids come from a tracer-global counter, so they are as
        deterministic as ``seq``.  The parent link is the innermost
        still-open span (the simulation is single-threaded, so lexical
        nesting *is* causal nesting); pass ``parent=`` to override —
        an explicit ``parent=-1`` forces a root span.
        """
        return self.span_begin(name, system=system, parent=parent, **attrs)

    def span_begin(
        self,
        name: str,
        /,
        system: int = 0,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> SpanHandle:
        """Open a span without a ``with`` block (see :meth:`span`).

        Every begin must reach a :meth:`span_end` on all exit paths —
        rule R013 checks this statically, the trace invariant checker
        dynamically.
        """
        self._span_seq += 1
        handle = SpanHandle(self, self._span_seq, name, system)
        if parent is None:
            parent_id = self._span_stack[-1].span_id if self._span_stack \
                else -1
        else:
            parent_id = parent
        self._span_stack.append(handle)
        self.emit(
            SPAN_BEGIN, system=system, span=handle.span_id, name=name,
            parent=parent_id, **attrs,
        )
        return handle

    def span_end(self, handle: _NullSpan, **attrs: Any) -> None:
        """Close an open span, emitting the paired ``span.end``."""
        if not isinstance(handle, SpanHandle) or handle._closed:
            return
        handle._closed = True
        # LIFO in the common case; identity removal tolerates manual
        # spans closed out of order (the nesting invariant will flag
        # the trace, but the bracket stays paired).
        for i in range(len(self._span_stack) - 1, -1, -1):
            if self._span_stack[i] is handle:
                del self._span_stack[i]
                break
        self.emit(
            SPAN_END, system=handle.system, span=handle.span_id,
            name=handle.name, **attrs,
        )

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """The recorded events, in logical-time order."""
        return list(self._events)

    def clear(self) -> None:
        """Drop recorded events (the sequence counter keeps running)."""
        self._events.clear()

    def dump_jsonl(self) -> str:
        """The whole trace as canonical JSONL (one event per line)."""
        return "".join(e.to_json() + "\n" for e in self._events)

    def write(self, path: str) -> int:
        """Write the trace to ``path``; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dump_jsonl())
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(events={len(self._events)}, seq={self._seq})"


def load_trace(source: Union[str, Iterable[str]]) -> List[TraceEvent]:
    """Load a JSONL trace from a file path or an iterable of lines."""
    lines: Sequence[str]
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    return [TraceEvent.from_json(line) for line in lines if line.strip()]
