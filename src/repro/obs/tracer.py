"""The trace event bus: deterministic logical-time spans and events.

Every instrumented subsystem emits :class:`TraceEvent`\\ s through a
tracer.  Logical time is a single global sequence number (``seq``)
assigned in emission order — emission order *is* the simulation's
happened-before order because the simulation is single-threaded — plus,
for systems that registered their :class:`~repro.common.clock.
SkewedClock`, that clock's (deliberately skewed) reading.  Wall clocks
are banned here as everywhere else (rule R002): two runs with the same
seed must produce byte-identical traces, which is what lets a trace
double as a golden regression artifact.

The default tracer is :data:`NULL_TRACER`, whose :meth:`NullTracer.emit`
does nothing; hot paths additionally guard event construction behind
``tracer.enabled`` so tracing-off costs one attribute read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.common.clock import SkewedClock


def _jsonable(value: Any) -> Any:
    """Coerce a field value into a canonical JSON-serializable form."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, bytes):
        return "0x" + value.hex()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass(frozen=True)
class TraceEvent:
    """One structured event at a point in logical time.

    ``clock``/``ticks`` are the emitting system's skewed clock reading
    and raw tick count at emission (``None`` when the system never
    registered a clock — e.g. the global lock manager, system 0).
    """

    seq: int
    system: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)
    clock: Optional[float] = None
    ticks: Optional[int] = None

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "sys": self.system,
            "kind": self.kind,
            "f": self.fields,
        }
        if self.clock is not None:
            payload["clock"] = self.clock
            payload["ticks"] = self.ticks
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        data = json.loads(line)
        return cls(
            seq=data["seq"],
            system=data["sys"],
            kind=data["kind"],
            fields=dict(data.get("f", {})),
            clock=data.get("clock"),
            ticks=data.get("ticks"),
        )


class NullTracer:
    """The zero-cost default: swallows everything.

    Subsystems hold a tracer unconditionally; with the null tracer the
    per-event cost is one ``enabled`` check (call sites guard on it) or
    one no-op method call.
    """

    enabled: bool = False

    def register_clock(self, system_id: int, clock: SkewedClock) -> None:
        """Associate a system's skewed clock with its events (no-op)."""

    def emit(self, kind: str, /, system: int = 0, **fields: Any) -> None:
        """Record one event (no-op).

        ``kind`` is positional-only so payload fields may themselves be
        named ``kind`` (e.g. a log record's kind on a page update).
        """

    def events(self) -> List[TraceEvent]:
        return []


#: Shared process-wide null tracer; safe because it holds no state.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """A recording tracer: collects events and serializes them to JSONL.

    Registering a system's :class:`SkewedClock` makes that system's
    events carry clock readings; each emission also advances the clock
    one tick, so traces show per-system logical clocks drifting apart
    exactly as the paper assumes.  (No recovery-relevant code reads
    these clocks, so ticking them is observably free.)
    """

    enabled = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._clocks: Dict[int, SkewedClock] = {}
        self._seq = 0

    def register_clock(self, system_id: int, clock: SkewedClock) -> None:
        self._clocks[system_id] = clock

    def emit(self, kind: str, /, system: int = 0, **fields: Any) -> None:
        self._seq += 1
        clock = self._clocks.get(system)
        reading: Optional[float] = None
        ticks: Optional[int] = None
        if clock is not None:
            clock.tick()
            reading = clock.now()
            ticks = clock.ticks
        self._events.append(
            TraceEvent(
                seq=self._seq,
                system=system,
                kind=kind,
                fields={k: _jsonable(v) for k, v in fields.items()},
                clock=reading,
                ticks=ticks,
            )
        )

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """The recorded events, in logical-time order."""
        return list(self._events)

    def clear(self) -> None:
        """Drop recorded events (the sequence counter keeps running)."""
        self._events.clear()

    def dump_jsonl(self) -> str:
        """The whole trace as canonical JSONL (one event per line)."""
        return "".join(e.to_json() + "\n" for e in self._events)

    def write(self, path: str) -> int:
        """Write the trace to ``path``; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dump_jsonl())
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(events={len(self._events)}, seq={self._seq})"


def load_trace(source: Union[str, Iterable[str]]) -> List[TraceEvent]:
    """Load a JSONL trace from a file path or an iterable of lines."""
    lines: Sequence[str]
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    return [TraceEvent.from_json(line) for line in lines if line.strip()]
