"""The typed trace-event catalog.

Event kinds are constants so call sites, the timeline renderer and the
invariant checker agree on spelling (rule R006 enforces the same
discipline for counter names).  The field schema of each kind is
documented here and in ``docs/observability.md``; the invariant checker
relies on the starred fields.

Transaction lifecycle (system = the instance/client running the txn):

* ``TXN_BEGIN``     — ``txn``
* ``TXN_COMMIT``    — ``txn``, ``lazy``
* ``TXN_ROLLBACK``  — ``txn``, ``savepoint``

Logging (system = the log's owner):

* ``LOG_APPEND``    — ``lsn``*, ``kind``, ``txn``, ``page``, ``offset``
* ``LOG_APPEND_RAW``— ``nbytes``, ``local_max`` (CS server ship append)
* ``LOG_FORCE``     — ``up_to``
* ``LSN_OBSERVE``   — ``remote``*, ``before``*, ``after``* (Lamport
  merge of another system's Local_Max_LSN)

Page state (the invariant checker treats these three as page_LSN stamp
points; all carry ``page``*, ``lsn``*, ``page_lsn_prev``*):

* ``PAGE_UPDATE``   — + ``txn``*, ``slot``, ``kind``* (log record kind)
* ``RECOVERY_REDO`` — + (restart redo reapplied the record)
* ``RECOVERY_CLR``  — + ``txn``* (restart undo compensated the record)

Buffer/disk traffic (system = the pool's owner):

* ``PAGE_READ``     — ``page`` (disk read on a pool miss)
* ``PAGE_WRITE``    — ``page``, ``page_lsn`` (disk write, WAL honoured)
* ``PAGE_EVICT``    — ``page``, ``dirty``

Coherency (system = the sender):

* ``PAGE_TRANSFER`` — ``page``, ``src``, ``dst``, ``dirty``, ``scheme``
* ``PAGE_COPY``     — ``page``, ``src``, ``dst`` (fast-scheme read)

Locking (system 0, the global lock manager):

* ``LOCK_GRANT``    — ``owner``*, ``resource``*, ``mode``
* ``LOCK_WAIT``     — ``owner``, ``resource``, ``mode``
* ``LOCK_RELEASE``  — ``owner``*, ``resource``*
* ``LOCK_RELEASE_ALL`` — ``owner``* (commit/abort/crash-recovery)
* ``LOCK_DEADLOCK`` — ``owner``, ``resource``

Messages and the Commit_LSN service:

* ``NET_MSG``       — ``src``, ``dst``, ``kind``, ``nbytes``,
  ``piggyback``* (sender's Local_Max_LSN when piggybacking is on)
* ``NET_BROADCAST`` — ``maxima`` (the Section 3.5 explicit exchange)
* ``COMMIT_LSN_CHECK`` — ``page_lsn``, ``commit_lsn``, ``hit``

Recovery pass brackets:

* ``RECOVERY_BEGIN``— ``mode`` ("restart" | "fast" | "cs-client")
* ``RECOVERY_SKIP`` — ``page``*, ``lsn``*, ``page_lsn``* (redo screened
  out by the page_LSN test)
* ``RECOVERY_END``  — ``redone``, ``skipped``, ``losers``, ``clrs``

Client-server shipping (system = the server):

* ``CS_SHIP``       — ``client``, ``nbytes``, ``offset``
* ``CS_PAGE_BACK``  — ``client``, ``page``, ``rec_lsn``
* ``CS_COMMIT_POINT`` — ``client``, ``txn``

Disk-level I/O (system 0, the shared disk; distinct from the
pool-level ``PAGE_READ``/``PAGE_WRITE``, which attribute the I/O to
the pool's owner):

* ``DISK_READ``     — ``page``
* ``DISK_WRITE``    — ``page``, ``page_lsn``
* ``DISK_LOSE``     — ``page`` (simulated media failure armed)
* ``DISK_CORRUPT``  — ``page``, ``offset`` (byte flipped in the image)

Faults and degradation (see :mod:`repro.faults` and
``docs/fault_injection.md``):

* ``FAULT_INJECT``  — ``point``, ``action``, ``hit`` (system = the
  system the injection point attributed the hit to, 0 when unknown)
* ``DEGRADED_ENTER``— ``reason`` (log-device failure flipped the
  system read-only)
* ``DEGRADED_EXIT`` — (restart repaired the log device)

Replication (see :mod:`repro.replication` and ``docs/replication.md``;
system = the primary complex's shipper (system 0) unless noted):

* ``REPL_SHIP``     — ``standby``, ``records``, ``nbytes``, ``max_lsn``
  (one merged-log batch shipped to one standby)
* ``REPL_ACK``      — ``standby``, ``lsn`` (cumulative applied-LSN ack
  recorded on the primary)
* ``REPL_COMMIT_ACK`` — ``txn``, ``lsn``, ``level``, ``satisfied``
  (system = the committing instance; the commit-point ack decision)
* ``REPL_DEGRADED_ENTER`` — ``reason``, ``standby`` (primary stops
  waiting for this standby's acks instead of stalling)
* ``REPL_DEGRADED_EXIT``  — ``standby`` (acks caught back up)
* ``REPL_PROMOTE``  — ``applied_max_lsn``, ``sources`` (system = the
  promoted standby)

Instant restart (see :mod:`repro.recovery.instant` and
``docs/recovery.md``; system = the recovering system):

* ``INSTANT_OPEN``  — ``mode`` ("medium" | "fast" | "cs"), ``pages``
  (the sorted list of page ids whose redo chains are still pending),
  ``losers`` (loser transactions undone eagerly at open)
* ``INSTANT_PAGE``  — ``page``, ``redone``, ``skipped``, ``via``
  ("demand" | "sweep"); emitted *after* the page's chain is applied
  and before any access is served from it
* ``INSTANT_DONE``  — ``recovered``, ``demand``, ``swept`` (the
  manager drained: every pending page has been recovered)

Cluster scale-out (system = the recovering instance; see
``docs/scaleout.md``):

* ``CLUSTER_REDO_PLAN`` — ``partitions``, ``parallelism``, ``records``
  (the partitioned redo plan built from the merged log)
* ``CLUSTER_REDO_PART`` — ``partition``, ``pages``, ``records``,
  ``redone``, ``skipped`` (one partition's replay, emitted in
  partition order after the pool joins)

Causal spans (see ``docs/observability.md`` — paired brackets tying
flat events into per-transaction / per-recovery causal trees; emitted
by :meth:`~repro.obs.tracer.Tracer.span`):

* ``SPAN_BEGIN``    — ``span``* (deterministic span id), ``name``*
  (one of the ``SPAN_*`` names below), ``parent``* (enclosing span id,
  ``None`` for a root), plus free-form attributes (``txn``, ...)
* ``SPAN_END``      — ``span``*, ``name``*, plus ``error`` (exception
  class name) when the spanned block raised

Span names (the ``name`` field of span brackets; system = the system
doing the work):

* ``SPAN_COMMIT``        — a transaction commit (SD instance or CS
  client), attribute ``txn``
* ``SPAN_COMMIT_POINT``  — the CS server-side commit point, attributes
  ``client``, ``txn``
* ``SPAN_LOG_FORCE``     — one log force that actually advanced the
  stable boundary
* ``SPAN_LOCK_ACQUIRE``  — one blocking lock acquisition, attributes
  ``resource``, ``mode``
* ``SPAN_RECOVERY``      — a whole recovery run, attribute ``mode``
  ("restart" | "fast" | "cs-client" | "media")
* ``SPAN_ANALYSIS`` / ``SPAN_REDO`` / ``SPAN_UNDO`` — the recovery
  passes inside a ``SPAN_RECOVERY``
* ``SPAN_REDO_PART``     — one partition of the parallel partitioned
  redo, attribute ``partition``
* ``SPAN_RESTART``       — an instance/server/complex restart wrapper,
  attribute ``target``
* ``SPAN_QUIESCE``       — a CS quiesce checkpoint
* ``SPAN_PROMOTE``       — a standby promotion (final catch-up +
  restart recovery + flip writable), attribute ``standby``
* ``SPAN_RECOVER_PAGE``  — one on-demand page recovery under instant
  restart, attributes ``page``, ``via``

Locking events emitted by a sharded GLM additionally carry ``shard``
(the emitting shard's index); the monolithic GLM omits the field so
single-shard traces stay byte-identical to pre-sharding runs.
"""

from __future__ import annotations

TXN_BEGIN = "txn.begin"
TXN_COMMIT = "txn.commit"
TXN_ROLLBACK = "txn.rollback"

LOG_APPEND = "log.append"
LOG_APPEND_RAW = "log.append_raw"
LOG_FORCE = "log.force"
LSN_OBSERVE = "lsn.observe"

PAGE_UPDATE = "page.update"
PAGE_READ = "page.read"
PAGE_WRITE = "page.write"
PAGE_EVICT = "page.evict"
PAGE_TRANSFER = "page.transfer"
PAGE_COPY = "page.copy"

LOCK_GRANT = "lock.grant"
LOCK_WAIT = "lock.wait"
LOCK_RELEASE = "lock.release"
LOCK_RELEASE_ALL = "lock.release_all"
LOCK_DEADLOCK = "lock.deadlock"

NET_MSG = "net.msg"
NET_BROADCAST = "net.broadcast"
COMMIT_LSN_CHECK = "commit_lsn.check"

RECOVERY_BEGIN = "recovery.begin"
RECOVERY_REDO = "recovery.redo"
RECOVERY_SKIP = "recovery.skip"
RECOVERY_CLR = "recovery.clr"
RECOVERY_END = "recovery.end"

CS_SHIP = "cs.ship"
CS_PAGE_BACK = "cs.page_back"
CS_COMMIT_POINT = "cs.commit_point"

DISK_READ = "disk.read"
DISK_WRITE = "disk.write"
DISK_LOSE = "disk.lose"
DISK_CORRUPT = "disk.corrupt"

FAULT_INJECT = "fault.inject"
DEGRADED_ENTER = "degraded.enter"
DEGRADED_EXIT = "degraded.exit"

CLUSTER_REDO_PLAN = "cluster.redo_plan"
CLUSTER_REDO_PART = "cluster.redo_part"

REPL_SHIP = "repl.ship"
REPL_ACK = "repl.ack"
REPL_COMMIT_ACK = "repl.commit_ack"
REPL_DEGRADED_ENTER = "repl.degraded.enter"
REPL_DEGRADED_EXIT = "repl.degraded.exit"
REPL_PROMOTE = "repl.promote"

INSTANT_OPEN = "instant.open"
INSTANT_PAGE = "instant.recover_page"
INSTANT_DONE = "instant.done"

SPAN_BEGIN = "span.begin"
SPAN_END = "span.end"

SPAN_COMMIT = "commit"
SPAN_COMMIT_POINT = "commit_point"
SPAN_LOG_FORCE = "log_force"
SPAN_LOCK_ACQUIRE = "lock_acquire"
SPAN_RECOVERY = "recovery"
SPAN_ANALYSIS = "analysis"
SPAN_REDO = "redo"
SPAN_UNDO = "undo"
SPAN_REDO_PART = "redo_part"
SPAN_RESTART = "restart"
SPAN_QUIESCE = "quiesce"
SPAN_PROMOTE = "promote"
SPAN_RECOVER_PAGE = "recover_page"

#: The bracket kinds a span emits (for filters and the checker).
SPAN_KINDS = frozenset({SPAN_BEGIN, SPAN_END})

#: Event kinds that stamp a new page_LSN onto a page image; each must
#: carry ``page``, ``lsn`` and ``page_lsn_prev``.
PAGE_STAMP_KINDS = frozenset({PAGE_UPDATE, RECOVERY_REDO, RECOVERY_CLR})
