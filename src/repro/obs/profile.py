"""Critical-path profiling over reconstructed span trees.

Costs are logical ticks (see :mod:`repro.obs.spans`).  Two views:

* The **critical path** of a root span: the chain obtained by always
  descending into the most expensive (max inclusive) child.  Each step
  is charged ``inclusive(step) - inclusive(next step)`` — the ticks
  that step spent *outside* the chain's continuation — and the leaf is
  charged its full inclusive cost, so the step costs telescope:

      sum(step costs) == root.inclusive

  exactly.  That identity is the acceptance check for the whole span
  layer (``tests/test_spans.py``), and it is what makes "where did the
  restart's ticks go" answerable from a trace alone.
* The **self-cost table**: every span's exclusive ticks (inclusive
  minus all children, not just the chain), aggregated by span name —
  the flat-profile complement to the path view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import SpanNode


@dataclass(frozen=True)
class PathStep:
    """One node on a critical path and the ticks charged to it."""

    node: SpanNode
    cost: int


def critical_path(root: SpanNode) -> List[PathStep]:
    """The most expensive causal chain under ``root``.

    Descends into the max-inclusive child at every level (ties break
    toward the earlier span).  Unclosed children (inclusive 0) can
    never win over a closed sibling, and an unclosed root yields a
    single zero-cost step.
    """
    steps: List[PathStep] = []
    node = root
    while True:
        best: Optional[SpanNode] = None
        for child in node.children:
            if best is None or child.inclusive > best.inclusive:
                best = child
        if best is None:
            steps.append(PathStep(node=node, cost=node.inclusive))
            return steps
        steps.append(
            PathStep(node=node, cost=node.inclusive - best.inclusive))
        node = best


def path_cost(steps: Iterable[PathStep]) -> int:
    """Total ticks along a critical path (== the root's inclusive)."""
    return sum(step.cost for step in steps)


def self_costs(
    forest: Iterable[SpanNode],
) -> List[Tuple[str, int, int]]:
    """Aggregate exclusive ticks by span name.

    Returns ``(name, spans, exclusive_ticks)`` rows sorted by ticks
    descending (name ascending on ties, for deterministic output).
    """
    ticks: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    for root in forest:
        for node in root.walk():
            ticks[node.name] = ticks.get(node.name, 0) + node.exclusive
            counts[node.name] = counts.get(node.name, 0) + 1
    return sorted(
        ((name, counts[name], ticks[name]) for name in ticks),
        key=lambda row: (-row[2], row[0]),
    )


def select_root(
    forest: List[SpanNode],
    name: Optional[str] = None,
    txn: Optional[int] = None,
) -> Optional[SpanNode]:
    """Pick the root span to profile.

    Filters the roots by span ``name`` and/or a ``txn`` attribute;
    among the matches, returns the most expensive (ties toward the
    earlier span).  With no filters, simply the most expensive root.
    """
    candidates = [
        root for root in forest
        if (name is None or root.name == name)
        and (txn is None or root.attrs.get("txn") == txn)
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda r: (r.inclusive, -r.begin_seq))


def render_critical_path(steps: List[PathStep]) -> str:
    """ASCII table of a critical path with per-step charges."""
    if not steps:
        return "(no spans)"
    total = path_cost(steps)
    lines = [f"critical path: {total} ticks"]
    for depth, step in enumerate(steps):
        node = step.node
        attrs = ""
        if node.attrs:
            attrs = " " + " ".join(
                f"{k}={node.attrs[k]}" for k in sorted(node.attrs)
            )
        pct = 100.0 * step.cost / total if total else 0.0
        lines.append(
            f"  {'  ' * depth}{node.name} sys={node.system}"
            f"{attrs}: {step.cost} ticks ({pct:.1f}%)"
        )
    return "\n".join(lines)


def render_self_costs(
    rows: List[Tuple[str, int, int]], top: int = 10
) -> str:
    """ASCII top-N table of exclusive ticks by span name."""
    if not rows:
        return "(no spans)"
    shown = rows[:top] if top else rows
    width = max(len(name) for name, _, _ in shown)
    lines = [f"{'span':<{width}}  count  self-ticks"]
    for name, count, ticks in shown:
        lines.append(f"{name:<{width}}  {count:>5}  {ticks:>10}")
    if top and len(rows) > top:
        lines.append(f"... ({len(rows) - top} more span names)")
    return "\n".join(lines)
