"""Deterministic observability for the recovery stack.

The paper's arguments are all about *event order across unsynchronized
systems* — USN assignment, Commit_LSN checks, lock value blocks, page
transfers between instances.  ``repro.obs`` makes that order visible:

* :mod:`repro.obs.tracer` — a structured event bus stamped with
  deterministic logical time (a global sequence number plus each
  system's :class:`~repro.common.clock.SkewedClock` reading — never
  wall clock, rule R002).  The default :class:`NullTracer` is a no-op
  so tracing is zero-cost when off.
* :mod:`repro.obs.events` — the typed event-name catalog (R006 keeps
  call sites honest about it).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, a
  :class:`~repro.common.stats.StatsRegistry` extended with labeled
  counters and fixed-bucket histograms.
* :mod:`repro.obs.timeline` — ASCII per-system timelines (an
  executable, inspectable Figure 1) and summary tables.
* :mod:`repro.obs.invariants` — a trace-driven protocol checker that
  replays a trace and asserts the paper's invariants.
* :mod:`repro.obs.capture` — canned traced scenarios (the Section 1.5
  anomaly among them) for the CLI, docs and regression tests.
* :mod:`repro.obs.spans` — causal span trees reconstructed from paired
  ``span.begin``/``span.end`` events, with inclusive/exclusive tick
  costs.
* :mod:`repro.obs.profile` — the critical-path profiler over a span
  tree (the chain of steps whose costs sum exactly to the root's
  inclusive cost) and aggregate self-cost tables.
* :mod:`repro.obs.export` — Chrome/Perfetto trace-event JSON and
  Prometheus text exposition exporters.
* :mod:`repro.obs.diff` — span-path tick deltas between two traces of
  the same scenario.

Inspect a trace with ``python -m repro.trace`` (see
``docs/observability.md``).
"""

from repro.obs.diff import PathDelta, diff_traces, render_diff
from repro.obs.export import (
    dump_perfetto_json,
    to_perfetto,
    to_prometheus,
    validate_perfetto,
)
from repro.obs.invariants import Violation, check_trace
from repro.obs.metrics import DEFAULT_EDGES, Histogram, MetricsRegistry
from repro.obs.profile import (
    PathStep,
    critical_path,
    path_cost,
    select_root,
    self_costs,
)
from repro.obs.spans import (
    SpanNode,
    build_span_forest,
    render_span_tree,
    spans_by_name,
)
from repro.obs.timeline import render_timeline, summarize_trace
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    load_trace,
)

__all__ = [
    "DEFAULT_EDGES",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PathDelta",
    "PathStep",
    "SpanNode",
    "TraceEvent",
    "Tracer",
    "Violation",
    "build_span_forest",
    "check_trace",
    "critical_path",
    "diff_traces",
    "dump_perfetto_json",
    "load_trace",
    "path_cost",
    "render_diff",
    "render_span_tree",
    "render_timeline",
    "select_root",
    "self_costs",
    "spans_by_name",
    "summarize_trace",
    "to_perfetto",
    "to_prometheus",
    "validate_perfetto",
]
