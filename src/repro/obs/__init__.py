"""Deterministic observability for the recovery stack.

The paper's arguments are all about *event order across unsynchronized
systems* — USN assignment, Commit_LSN checks, lock value blocks, page
transfers between instances.  ``repro.obs`` makes that order visible:

* :mod:`repro.obs.tracer` — a structured event bus stamped with
  deterministic logical time (a global sequence number plus each
  system's :class:`~repro.common.clock.SkewedClock` reading — never
  wall clock, rule R002).  The default :class:`NullTracer` is a no-op
  so tracing is zero-cost when off.
* :mod:`repro.obs.events` — the typed event-name catalog (R006 keeps
  call sites honest about it).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, a
  :class:`~repro.common.stats.StatsRegistry` extended with labeled
  counters and fixed-bucket histograms.
* :mod:`repro.obs.timeline` — ASCII per-system timelines (an
  executable, inspectable Figure 1) and summary tables.
* :mod:`repro.obs.invariants` — a trace-driven protocol checker that
  replays a trace and asserts the paper's invariants.
* :mod:`repro.obs.capture` — canned traced scenarios (the Section 1.5
  anomaly among them) for the CLI, docs and regression tests.

Inspect a trace with ``python -m repro.trace`` (see
``docs/observability.md``).
"""

from repro.obs.invariants import Violation, check_trace
from repro.obs.metrics import DEFAULT_EDGES, Histogram, MetricsRegistry
from repro.obs.timeline import render_timeline, summarize_trace
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    load_trace,
)

__all__ = [
    "DEFAULT_EDGES",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "Violation",
    "check_trace",
    "load_trace",
    "render_timeline",
    "summarize_trace",
]
