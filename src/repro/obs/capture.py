"""Canned traced scenarios for the trace CLI and the regression tests.

The flagship capture is the paper's Section 1.5 lost-update anomaly
(experiment E1): two SD instances update one page, the short-log
instance crashes, and restart redo either replays the committed update
(USN LSNs) or silently skips it (naive LSNs).  Running it under a
recording tracer turns the anomaly into an inspectable artifact — the
page_LSN regression shows up as an I1/I2 invariant violation in the
naive trace and is absent from the USN trace.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.baselines.naive import NaiveDbmsInstance
from repro.common.clock import SkewedClock
from repro.obs.tracer import Tracer
from repro.sd.complex import SDComplex
from repro.sd.instance import DbmsInstance

SCENARIOS = ("e1-usn", "e1-naive", "e7-restart")

#: Default per-system clock skew, exaggerated so timelines visibly
#: drift (offset seconds, rate multiplier) — the paper's Section 1
#: premise that clocks across a complex are *not* synchronized.
DEFAULT_SKEWS: Dict[int, Tuple[float, float]] = {
    1: (37.0, 1.13),
    2: (74.0, 1.26),
}


def capture_e1(
    scheme: str = "usn",
    filler_records: int = 50,
    skews: Optional[Dict[int, Tuple[float, float]]] = None,
    injector=None,
) -> Tuple[Tracer, Dict[str, object]]:
    """Run the Section 1.5 anomaly scenario under a recording tracer.

    ``scheme`` selects the LSN rule ("usn" or "naive"); ``skews`` maps
    system id to (offset, rate) for that instance's clock.  Returns the
    tracer plus a summary dict (survivor payload, the two contending
    LSNs, and whether the committed update survived the restart).
    ``injector`` threads a :mod:`repro.faults` injector through the
    complex (default: the zero-cost null injector; an enabled injector
    with an empty plan must leave the trace byte-identical).
    """
    if scheme not in ("usn", "naive"):
        raise ValueError("scheme must be 'usn' or 'naive'")
    instance_cls = DbmsInstance if scheme == "usn" else NaiveDbmsInstance
    clock_skews = skews if skews is not None else DEFAULT_SKEWS
    tracer = Tracer()
    complex_ = SDComplex(n_data_pages=128, tracer=tracer, injector=injector)
    instances = {}
    for system_id in (1, 2):
        offset, rate = clock_skews.get(system_id, (0.0, 1.0))
        instances[system_id] = complex_.add_instance(
            system_id, instance_cls=instance_cls, lock_granularity="page",
            clock=SkewedClock(offset=offset, rate=rate),
        )
    s1, s2 = instances[1], instances[2]
    # S2 creates the record, commits, and writes the page to disk; then
    # pads its log so naive LSNs there run far ahead of S1's.
    txn = s2.begin()
    page_id = s2.allocate_page(txn)
    slot = s2.insert(txn, page_id, b"original")
    s2.commit(txn)
    s2.pool.write_page(page_id)
    s2.write_filler(filler_records)
    t2 = s2.begin()
    s2.update(t2, page_id, slot, b"t2-update")
    s2.commit(t2)
    t2_lsn = max(r.lsn for _, r in s2.log.scan() if r.page_id == page_id)
    # S1's committed update: under naive LSNs it stamps a *smaller*
    # LSN onto a page already carrying S2's large one.
    t1 = s1.begin()
    s1.update(t1, page_id, slot, b"t1-committed")
    s1.commit(t1)
    t1_lsn = max(r.lsn for _, r in s1.log.scan() if r.page_id == page_id)
    complex_.crash_instance(1)
    complex_.restart_instance(1)
    survivor = complex_.disk.read_page(page_id).read_record(slot)
    summary: Dict[str, object] = {
        "scheme": scheme,
        "page": page_id,
        "slot": slot,
        "t1_lsn": int(t1_lsn),
        "t2_lsn": int(t2_lsn),
        "survivor": survivor.decode() if survivor is not None else None,
        "committed_update_survived": survivor == b"t1-committed",
    }
    return tracer, summary


def capture_e7(
    n_txns: int = 6,
    redo_parallelism: int = 1,
    skews: Optional[Dict[int, Tuple[float, float]]] = None,
    injector=None,
) -> Tuple[Tracer, Dict[str, object]]:
    """Run a restart-heavy scenario (experiment E7) under a tracer.

    One SD instance commits ``n_txns`` transactions, leaves one more
    in flight and an unforced committed tail in the buffer pool, then
    crashes and restarts — so the trace carries a full recovery span
    tree (analysis/redo/undo with real redo and CLR work), the input
    the critical-path profiler and the E7 time-to-recover experiment
    reason about.  Returns the tracer and a summary dict.
    """
    clock_skews = skews if skews is not None else DEFAULT_SKEWS
    tracer = Tracer()
    complex_ = SDComplex(n_data_pages=128, tracer=tracer,
                         injector=injector,
                         redo_parallelism=redo_parallelism)
    offset, rate = clock_skews.get(1, (0.0, 1.0))
    s1 = complex_.add_instance(
        1, lock_granularity="record",
        clock=SkewedClock(offset=offset, rate=rate),
    )
    setup = s1.begin()
    page_id = s1.allocate_page(setup)
    slots = [
        s1.insert(setup, page_id, f"row-{i}".encode())
        for i in range(n_txns)
    ]
    s1.commit(setup)
    # Committed work whose page images never reach disk before the
    # crash: restart redo must replay it from the stable log.
    for i, slot in enumerate(slots):
        txn = s1.begin()
        s1.update(txn, page_id, slot, f"committed-{i}".encode())
        s1.commit(txn)
    # One loser: in flight at the crash, so undo writes CLRs.
    loser = s1.begin()
    s1.update(loser, page_id, slots[0], b"uncommitted")
    complex_.crash_instance(1)
    summary_obj = complex_.restart_instance(1)
    survivor = complex_.disk.read_page(page_id).read_record(slots[0])
    summary: Dict[str, object] = {
        "scheme": "usn",
        "page": page_id,
        "txns": n_txns,
        "redo_parallelism": redo_parallelism,
        "records_redone": summary_obj.records_redone,
        "clrs_written": summary_obj.clrs_written,
        "loser_rolled_back": survivor == b"committed-0",
    }
    return tracer, summary


def capture(scenario: str) -> Tuple[Tracer, Dict[str, object]]:
    """Dispatch by CLI scenario name (see :data:`SCENARIOS`)."""
    if scenario == "e1-usn":
        return capture_e1("usn")
    if scenario == "e1-naive":
        return capture_e1("naive")
    if scenario == "e7-restart":
        return capture_e7()
    raise ValueError(
        f"unknown scenario {scenario!r}; choose from {', '.join(SCENARIOS)}"
    )
