"""Trace-driven protocol invariant checker.

Replays a trace in logical-time order and asserts the paper's safety
properties *as observed*, independent of the implementation that emitted
them:

* **I1 page-lsn-monotonic** — every page_LSN stamp (``page.update``,
  ``recovery.redo``, ``recovery.clr``) must install an LSN strictly
  greater than the page's previous page_LSN.  This is Section 1.5's
  correctness condition; the naive address-based LSN baseline violates
  it on the E1 lost-update scenario (a remote update stamps a *smaller*
  LSN over a larger one), which is exactly what this checker flags.
* **I2 redo-screening** — restart redo must honour the ARIES test:
  ``recovery.redo`` only when ``lsn > page_LSN``, ``recovery.skip`` only
  when ``lsn <= page_LSN``.
* **I3 update-under-lock** — every traced record-level page update (log
  record kind ``UPDATE``) runs under a lock its transaction holds on
  that page or a record of it.  Space-map and format updates are exempt
  (the paper's SMPs are protected by latches, not locks), as are
  restart-recovery redo/CLR stamps (restart runs with locks released).
* **I4 lamport** — every ``lsn.observe`` merge must leave the local
  maximum at least ``max(before, remote)``: observing a remote
  Local_Max_LSN may never move logical time backwards.
* **I5 cluster-redo** — every ``cluster.redo_part`` must fall between
  its system's ``cluster.redo_plan`` and the enclosing
  ``recovery.end``; by that end, the distinct partition ids must cover
  the plan exactly (``partitions`` of them, no duplicates, none
  missing).
* **I6 span-pairing** — every ``span.begin`` has exactly one matching
  ``span.end`` (same span id, later in logical time); no duplicate
  begins, no orphan ends, nothing left open at end of trace.
* **I7 span-nesting** — per system, spans close in LIFO order: the
  causal tree reconstructed by :mod:`repro.obs.spans` is only
  meaningful if brackets nest properly.
* **I8 instant-recovery** — under instant restart, no page may be
  served before its redo chain is applied: between ``instant.open``
  (which carries the sorted pending-page list) and that page's
  ``instant.recover_page``, any ``page.read`` / ``page.update`` /
  ``recovery.clr`` touching the page — by *any* system — is a stale
  access.  ``instant.done`` must find no page still pending.

The checker is deliberately event-sourced: it keeps page and lock state
reconstructed *only from the trace*, so it can audit a saved JSONL file
without re-running the scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.obs import events as ev
from repro.obs.tracer import TraceEvent

#: Log-record kinds whose page stamps must run under a transaction lock.
_LOCKED_RECORD_KINDS = frozenset({"UPDATE"})


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the offending event."""

    invariant: str
    seq: int
    system: int
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.invariant}] seq={self.seq} sys={self.system}: "
            f"{self.message}"
        )


def _resource_key(resource: Any) -> Tuple[Any, ...]:
    if isinstance(resource, (list, tuple)):
        return tuple(resource)
    return (resource,)


class _LockTable:
    """Lock state reconstructed from lock.* events."""

    def __init__(self) -> None:
        self._held: Dict[Any, Set[Tuple[Any, ...]]] = {}

    def grant(self, owner: Any, resource: Any) -> None:
        self._held.setdefault(owner, set()).add(_resource_key(resource))

    def release(self, owner: Any, resource: Any) -> None:
        self._held.get(owner, set()).discard(_resource_key(resource))

    def release_all(self, owner: Any) -> None:
        self._held.pop(owner, None)

    def covers_page(self, owner: Any, page: Any) -> bool:
        """True if ``owner`` holds a lock on ``page`` or one of its records."""
        for res in self._held.get(owner, ()):
            if len(res) >= 2 and res[0] in ("page", "record") and res[1] == page:
                return True
        return False


def check_trace(events: Iterable[TraceEvent]) -> List[Violation]:
    """Replay ``events`` and return all invariant violations found."""
    ordered = sorted(events, key=lambda e: e.seq)
    violations: List[Violation] = []
    # page_LSN per (system, page): page images diverge across systems
    # (each buffer pool holds its own copy between transfers), so the
    # monotonicity ledger is keyed per system and re-seeded from each
    # event's own page_lsn_prev field.
    locks = _LockTable()
    observed_max: Dict[int, int] = {}
    # I5: system -> (expected partition count, partition ids seen so far)
    redo_plans: Dict[int, Tuple[int, Set[int]]] = {}
    # I6: span id -> begin event (still open); closed ids kept to catch
    # duplicate ends.
    open_spans: Dict[int, TraceEvent] = {}
    closed_spans: Set[int] = set()
    # I7: per-system stack of open span ids.
    span_stacks: Dict[int, List[int]] = {}
    # I8: page -> recovering systems whose redo chain for it is still
    # unapplied (a page can be pending in several instant managers).
    instant_pending: Dict[Any, Set[int]] = {}

    def flag(inv: str, event: TraceEvent, message: str) -> None:
        violations.append(
            Violation(
                invariant=inv,
                seq=event.seq,
                system=event.system,
                message=message,
            )
        )

    for event in ordered:
        f = event.fields
        kind = event.kind

        if kind == ev.LOCK_GRANT:
            locks.grant(f.get("owner"), f.get("resource"))
        elif kind == ev.LOCK_RELEASE:
            locks.release(f.get("owner"), f.get("resource"))
        elif kind == ev.LOCK_RELEASE_ALL:
            locks.release_all(f.get("owner"))

        if kind in ev.PAGE_STAMP_KINDS:
            lsn = f.get("lsn")
            prev = f.get("page_lsn_prev")
            if lsn is not None and prev is not None and lsn <= prev:
                flag(
                    "page-lsn-monotonic",
                    event,
                    f"page {f.get('page')} stamped lsn={lsn} over "
                    f"page_lsn={prev} (stamp must strictly advance; "
                    f"this is the Section 1.5 anomaly)",
                )

        if kind == ev.RECOVERY_REDO:
            lsn, prev = f.get("lsn"), f.get("page_lsn_prev")
            if lsn is not None and prev is not None and lsn <= prev:
                flag(
                    "redo-screening",
                    event,
                    f"redo applied record lsn={lsn} to page "
                    f"{f.get('page')} with page_lsn={prev} "
                    f"(ARIES requires lsn > page_lsn)",
                )
        elif kind == ev.RECOVERY_SKIP:
            lsn, page_lsn = f.get("lsn"), f.get("page_lsn")
            if lsn is not None and page_lsn is not None and lsn > page_lsn:
                flag(
                    "redo-screening",
                    event,
                    f"redo of record lsn={lsn} skipped although page "
                    f"{f.get('page')} has page_lsn={page_lsn} < lsn",
                )

        if (
            kind == ev.PAGE_UPDATE
            and f.get("kind") in _LOCKED_RECORD_KINDS
            and f.get("txn") is not None
        ):
            if not locks.covers_page(f.get("txn"), f.get("page")):
                flag(
                    "update-under-lock",
                    event,
                    f"txn {f.get('txn')} updated page {f.get('page')} "
                    f"without holding a page or record lock on it",
                )

        if kind == ev.LSN_OBSERVE:
            before = f.get("before")
            remote = f.get("remote")
            after = f.get("after")
            if before is not None and remote is not None and after is not None:
                floor = max(before, remote)
                if after < floor:
                    flag(
                        "lamport",
                        event,
                        f"Local_Max_LSN merge went backwards: "
                        f"before={before} remote={remote} after={after}",
                    )
                prev_seen = observed_max.get(event.system)
                if prev_seen is not None and after < prev_seen:
                    flag(
                        "lamport",
                        event,
                        f"system's observed maximum regressed: "
                        f"{prev_seen} -> {after}",
                    )
                observed_max[event.system] = after

        if kind == ev.CLUSTER_REDO_PLAN:
            if event.system in redo_plans:
                flag(
                    "cluster-redo",
                    event,
                    f"redo plan opened while a previous plan for system "
                    f"{event.system} is still awaiting recovery.end",
                )
            redo_plans[event.system] = (f.get("partitions", 0), set())
        elif kind == ev.CLUSTER_REDO_PART:
            plan = redo_plans.get(event.system)
            partition = f.get("partition")
            if plan is None:
                flag(
                    "cluster-redo",
                    event,
                    f"redo_part partition={partition} outside any "
                    f"redo_plan/recovery.end window",
                )
            elif partition in plan[1]:
                flag(
                    "cluster-redo",
                    event,
                    f"duplicate redo_part for partition {partition}",
                )
            else:
                plan[1].add(partition)
        elif kind == ev.RECOVERY_END:
            plan = redo_plans.pop(event.system, None)
            if plan is not None and len(plan[1]) != plan[0]:
                flag(
                    "cluster-redo",
                    event,
                    f"redo plan promised {plan[0]} partition(s) but "
                    f"{len(plan[1])} replayed before recovery.end",
                )

        if kind == ev.INSTANT_OPEN:
            for page in f.get("pages", ()):
                instant_pending.setdefault(page, set()).add(event.system)
        elif kind == ev.INSTANT_PAGE:
            page = f.get("page")
            holders = instant_pending.get(page)
            if holders is None or event.system not in holders:
                flag(
                    "instant-recovery",
                    event,
                    f"recover_page for page {page} that instant.open "
                    f"never declared pending on system {event.system}",
                )
            else:
                holders.discard(event.system)
                if not holders:
                    instant_pending.pop(page, None)
        elif kind == ev.INSTANT_DONE:
            stale = sorted(
                page for page, holders in instant_pending.items()
                if event.system in holders
            )
            if stale:
                flag(
                    "instant-recovery",
                    event,
                    f"instant.done with page(s) {stale} still pending",
                )
        elif (
            kind in (ev.PAGE_READ, ev.PAGE_UPDATE, ev.RECOVERY_CLR)
            and instant_pending
            and f.get("page") in instant_pending
        ):
            flag(
                "instant-recovery",
                event,
                f"page {f.get('page')} served ({kind}) before its "
                f"instant-restart redo chain was applied (pending on "
                f"system(s) {sorted(instant_pending[f.get('page')])})",
            )

        if kind == ev.SPAN_BEGIN:
            span_id = f.get("span")
            if span_id in open_spans or span_id in closed_spans:
                flag(
                    "span-pairing",
                    event,
                    f"duplicate span.begin for span id {span_id}",
                )
            else:
                open_spans[span_id] = event
                span_stacks.setdefault(event.system, []).append(span_id)
        elif kind == ev.SPAN_END:
            span_id = f.get("span")
            begin = open_spans.pop(span_id, None)
            if begin is None:
                flag(
                    "span-pairing",
                    event,
                    f"span.end for span id {span_id} without an open "
                    f"span.begin",
                )
            else:
                closed_spans.add(span_id)
                if begin.system != event.system:
                    flag(
                        "span-pairing",
                        event,
                        f"span {span_id} began on system {begin.system} "
                        f"but ended on system {event.system}",
                    )
                stack = span_stacks.get(event.system, [])
                if stack and stack[-1] == span_id:
                    stack.pop()
                else:
                    flag(
                        "span-nesting",
                        event,
                        f"span {span_id} ({f.get('name')}) closed out of "
                        f"LIFO order on system {event.system} "
                        f"(open stack: {stack})",
                    )
                    if span_id in stack:
                        stack.remove(span_id)

    for span_id in sorted(open_spans):
        begin = open_spans[span_id]
        violations.append(
            Violation(
                invariant="span-pairing",
                seq=begin.seq,
                system=begin.system,
                message=(
                    f"span {span_id} ({begin.fields.get('name')}) never "
                    f"closed (no span.end by end of trace)"
                ),
            )
        )

    return violations


def render_violations(violations: List[Violation]) -> str:
    """Human-readable report (one line per violation, or an all-clear)."""
    if not violations:
        return "invariants: OK (page-lsn-monotonic, redo-screening, " \
               "update-under-lock, lamport, cluster-redo, " \
               "span-pairing, span-nesting, instant-recovery)"
    lines = [f"invariants: {len(violations)} violation(s)"]
    lines.extend(f"  {v}" for v in violations)
    return "\n".join(lines)


def first_violation(
    violations: List[Violation], invariant: str
) -> Optional[Violation]:
    """Convenience for tests: the first violation of a given invariant."""
    for v in violations:
        if v.invariant == invariant:
            return v
    return None
