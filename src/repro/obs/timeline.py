"""ASCII per-system timelines and summary tables for traces.

:func:`render_timeline` is an executable Figure 1: one column per
system, one row per event in logical-time (``seq``) order, so the
interleaving of log appends, lock traffic and page transfers across
unsynchronized systems can be read top to bottom.  :func:`summarize_trace`
condenses the same trace into tables (event counts by kind and system,
per-page stamp history, message-size histogram) suitable for quoting in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.harness.experiment import Table
from repro.obs.events import PAGE_STAMP_KINDS
from repro.obs.metrics import (
    TRACE_EVENTS,
    TRACE_MESSAGE_BYTES,
    MetricsRegistry,
)
from repro.obs.tracer import TraceEvent

#: Field rendering order for event labels; everything else follows
#: alphabetically so labels are deterministic.
_FIELD_ORDER = (
    "txn",
    "page",
    "slot",
    "lsn",
    "page_lsn_prev",
    "page_lsn",
    "owner",
    "resource",
    "mode",
    "src",
    "dst",
    "kind",
)

_COLUMN_WIDTH = 30


def event_label(event: TraceEvent, width: int = 0) -> str:
    """A compact one-line label: ``kind key=value ...``."""
    parts = [event.kind]
    seen = set()
    for key in _FIELD_ORDER:
        if key in event.fields:
            parts.append(f"{key}={_compact(event.fields[key])}")
            seen.add(key)
    for key in sorted(event.fields):
        if key not in seen:
            parts.append(f"{key}={_compact(event.fields[key])}")
    label = " ".join(parts)
    if width and len(label) > width:
        label = label[: width - 1] + "…"
    return label


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, list):
        return "[" + ",".join(_compact(v) for v in value) + "]"
    if isinstance(value, dict):
        inner = ",".join(f"{k}:{_compact(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    return str(value)


def _systems_of(events: Sequence[TraceEvent]) -> List[int]:
    return sorted({e.system for e in events})


def render_timeline(
    events: Iterable[TraceEvent],
    column_width: int = _COLUMN_WIDTH,
    max_rows: int = 0,
) -> str:
    """Render the trace as an ASCII per-system timeline.

    Each row is one event; the label appears in the emitting system's
    column, prefixed by the global ``seq`` and (when the system has a
    registered clock) its skewed-clock reading — the visible disagreement
    between columns *is* the paper's Section 2 clock-skew assumption.
    """
    ordered = sorted(events, key=lambda e: e.seq)
    if not ordered:
        return "(empty trace)"
    systems = _systems_of(ordered)
    truncated = 0
    if max_rows and len(ordered) > max_rows:
        truncated = len(ordered) - max_rows
        ordered = ordered[:max_rows]

    seq_w = max(len("seq"), len(str(ordered[-1].seq)))
    clk_w = max(len("clock"), *(len(_clock_cell(e)) for e in ordered))
    headers = ["seq".rjust(seq_w), "clock".rjust(clk_w)] + [
        f"sys{s}".ljust(column_width) for s in systems
    ]
    rule = ["-" * seq_w, "-" * clk_w] + ["-" * column_width] * len(systems)
    lines = ["  ".join(headers).rstrip(), "  ".join(rule)]
    col_of = {s: i for i, s in enumerate(systems)}
    for event in ordered:
        cells = [""] * len(systems)
        cells[col_of[event.system]] = event_label(event, column_width)
        row = [str(event.seq).rjust(seq_w), _clock_cell(event).rjust(clk_w)] + [
            c.ljust(column_width) for c in cells
        ]
        lines.append("  ".join(row).rstrip())
    if truncated:
        lines.append(f"... ({truncated} more events)")
    return "\n".join(lines)


def _clock_cell(event: TraceEvent) -> str:
    if event.clock is None:
        return "-"
    return f"{event.clock:.2f}"


def summarize_trace(
    events: Iterable[TraceEvent],
) -> Tuple[List[Tuple[str, Table]], MetricsRegistry]:
    """Build summary tables and a metrics snapshot from a trace.

    Returns ``(tables, metrics)`` where ``tables`` is a list of
    ``(title, Table)`` pairs and ``metrics`` is a
    :class:`MetricsRegistry` holding labeled per-kind counters plus a
    message-size histogram.
    """
    ordered = sorted(events, key=lambda e: e.seq)
    systems = _systems_of(ordered)
    metrics = MetricsRegistry()

    counts: Dict[str, Dict[int, int]] = {}
    stamps: Dict[Any, List[TraceEvent]] = {}
    for event in ordered:
        counts.setdefault(event.kind, {}).setdefault(event.system, 0)
        counts[event.kind][event.system] += 1
        metrics.incr_labeled(TRACE_EVENTS, kind=event.kind)
        nbytes = event.fields.get("nbytes")
        if isinstance(nbytes, (int, float)):
            metrics.observe(TRACE_MESSAGE_BYTES, nbytes)
        if event.kind in PAGE_STAMP_KINDS and "page" in event.fields:
            stamps.setdefault(event.fields["page"], []).append(event)

    by_kind = Table(["kind"] + [f"sys{s}" for s in systems] + ["total"])
    for kind in sorted(counts):
        row = [counts[kind].get(s, 0) for s in systems]
        by_kind.add_row(kind, *row, sum(row))
    tables: List[Tuple[str, Table]] = [("events by kind / system", by_kind)]

    if stamps:
        stamp_table = Table(
            ["page", "stamps", "first_lsn", "last_lsn", "systems"]
        )
        for page in sorted(stamps, key=_compact):
            page_events = stamps[page]
            lsns = [e.fields.get("lsn") for e in page_events]
            stamp_table.add_row(
                page,
                len(page_events),
                lsns[0],
                lsns[-1],
                ",".join(str(s) for s in sorted({e.system for e in page_events})),
            )
        tables.append(("page_LSN stamp history", stamp_table))

    hist = metrics.histograms().get(TRACE_MESSAGE_BYTES)
    if hist is not None and hist.total:
        hist_table = Table(["message bytes", "count"])
        for i, count in enumerate(hist.counts):
            if count:
                hist_table.add_row(hist.bucket_label(i), count)
        tables.append(("message size distribution", hist_table))

    return tables, metrics
