"""Span-tree reconstruction from a flat trace.

A span is a pair of ``span.begin``/``span.end`` events sharing a
``span`` id; the begin event carries the parent link (``parent``, -1
for a root).  Because the simulation is single-threaded, the spans of
one trace nest properly and the pairs reconstruct into a forest of
:class:`SpanNode` trees — the causal skeleton the critical-path
profiler (:mod:`repro.obs.profile`) and the exporters walk.

Costs are **logical ticks**: a span's inclusive cost is the number of
``seq`` steps between its begin and end events, i.e. how many trace
events the simulation emitted while the span was open.  Deterministic
by construction (rule R002: no wall clocks), so costs diff cleanly
across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs import events as ev
from repro.obs.tracer import TraceEvent

#: Begin-event fields that are span plumbing, not user attributes.
_STRUCTURAL_FIELDS = frozenset({"span", "name", "parent"})


@dataclass
class SpanNode:
    """One reconstructed span and its children."""

    span_id: int
    name: str
    system: int
    parent_id: int
    begin_seq: int
    end_seq: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end_seq is not None

    @property
    def inclusive(self) -> int:
        """Logical ticks between begin and end (0 for unclosed spans)."""
        if self.end_seq is None:
            return 0
        return self.end_seq - self.begin_seq

    @property
    def exclusive(self) -> int:
        """Self cost: inclusive minus the children's inclusive ticks."""
        return self.inclusive - sum(c.inclusive for c in self.children)

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpanNode({self.name!r}, id={self.span_id}, "
            f"sys={self.system}, inclusive={self.inclusive})"
        )


def build_span_forest(events: Iterable[TraceEvent]) -> List[SpanNode]:
    """Reconstruct the span forest from a trace.

    Returns the root spans in begin order.  Tolerates unclosed spans
    (a crash mid-span leaves ``end_seq=None``; the invariant checker is
    where unpaired brackets become findings, not here) and dangling
    parent ids (the child is promoted to a root).
    """
    by_id: Dict[int, SpanNode] = {}
    roots: List[SpanNode] = []
    for event in events:
        if event.kind == ev.SPAN_BEGIN:
            fields = event.fields
            node = SpanNode(
                span_id=fields["span"],
                name=fields["name"],
                system=event.system,
                parent_id=fields.get("parent", -1),
                begin_seq=event.seq,
                attrs={
                    k: v for k, v in fields.items()
                    if k not in _STRUCTURAL_FIELDS
                },
            )
            by_id[node.span_id] = node
            parent = by_id.get(node.parent_id)
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        elif event.kind == ev.SPAN_END:
            node = by_id.get(event.fields.get("span", -1))
            if node is not None:
                node.end_seq = event.seq
                error = event.fields.get("error")
                if error is not None:
                    node.error = error
    return roots


def spans_by_name(
    forest: Iterable[SpanNode], name: str
) -> List[SpanNode]:
    """Every span named ``name`` anywhere in the forest, begin order."""
    found = [
        node
        for root in forest
        for node in root.walk()
        if node.name == name
    ]
    found.sort(key=lambda n: n.begin_seq)
    return found


def render_span_tree(
    forest: Iterable[SpanNode], max_depth: int = 0
) -> str:
    """ASCII rendering of the span forest with tick costs.

    ``max_depth`` > 0 prunes deeper levels (0 = unlimited).
    """
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        attrs = ""
        if node.attrs:
            attrs = " " + " ".join(
                f"{k}={node.attrs[k]}" for k in sorted(node.attrs)
            )
        status = ""
        if not node.closed:
            status = " [unclosed]"
        elif node.error:
            status = f" [error={node.error}]"
        lines.append(
            f"{indent}{node.name} sys={node.system} span={node.span_id} "
            f"incl={node.inclusive} excl={node.exclusive}{attrs}{status}"
        )
        if max_depth and depth + 1 >= max_depth:
            return
        for child in node.children:
            visit(child, depth + 1)

    for root in forest:
        visit(root, 0)
    if not lines:
        return "(no spans)"
    return "\n".join(lines)
