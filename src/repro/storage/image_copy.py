"""Image copies (archive dumps) for media recovery.

The paper's media recovery procedure (Section 3.2.2) starts from "a copy
of the page from the last image copy" and then redoes that page's log
records from the merged local logs.  An :class:`ImageCopy` is a
point-in-time snapshot of selected disk pages, taken while the system is
quiesced (fuzzy dumps are out of the paper's scope and ours).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

from repro.common.lsn import Lsn
from repro.storage.disk import SharedDisk
from repro.storage.page import Page


class ImageCopy:
    """A snapshot of page images, keyed by page id.

    When the dump is taken at a quiesced point (all pools flushed), the
    per-log byte offsets captured in ``log_offsets`` bound the media
    recovery scan: no record before the dump can matter, so the merge
    starts at those offsets instead of at the beginning of each log.
    """

    def __init__(self) -> None:
        self._images: Dict[int, bytes] = {}
        self.log_offsets: Dict[int, int] = {}

    @classmethod
    def take(
        cls,
        disk: SharedDisk,
        page_ids: Optional[Iterable[int]] = None,
        logs: Optional[Iterable] = None,
    ) -> "ImageCopy":
        """Snapshot ``page_ids`` (default: every written page) from disk.

        Reads bypass the I/O counters: archive dumps run against a
        mirror/backup path in real systems, and counting them would
        pollute the experiments' online-I/O numbers.

        Pass the complex's local ``logs`` to capture the scan-start
        offsets.  Only valid when the system is quiesced (every update
        covered by the logs so far is reflected in the dumped pages).
        """
        copy = cls()
        ids = list(page_ids) if page_ids is not None else list(
            disk.written_page_ids()
        )
        for page_id in ids:
            if disk.page_exists(page_id):
                # A private copy of the raw stored image (checksum
                # intact): a slab window would alias live storage and
                # the dump must be a point-in-time snapshot.
                copy._images[page_id] = disk.raw_image(page_id)
        if logs is not None:
            copy.log_offsets = {
                log.system_id: log.end_offset for log in logs
            }
        return copy

    def has_page(self, page_id: int) -> bool:
        return page_id in self._images

    def restore_page(self, page_id: int) -> Page:
        """The archived image of ``page_id`` as a fresh Page object."""
        image = self._images.get(page_id)
        if image is None:
            raise KeyError(f"image copy has no page {page_id}")
        return Page.from_bytes(image)

    def page_lsn(self, page_id: int) -> Lsn:
        """page_LSN recorded in the archived image."""
        return self.restore_page(page_id).page_lsn

    def page_ids(self) -> Iterator[int]:
        return iter(sorted(self._images))

    def __len__(self) -> int:
        return len(self._images)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ImageCopy(pages={len(self._images)})"
