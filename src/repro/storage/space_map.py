"""Space map pages (SMPs): allocation state for data pages.

Two codecs over the same :class:`~repro.storage.page.Page` payload:

* :class:`SpaceMap` — the DB2-style layout the paper defends: **one bit
  per data page** (allocated / deallocated).  The SMP's own ``page_LSN``
  is the value the paper's reallocation rule leans on (Section 3.4): the
  deallocation of page P updates P's SMP, so the USN assignment rule
  forces the SMP's LSN above P's last LSN; a later reallocation reads
  the SMP anyway and can therefore stamp the new format record with an
  LSN above anything ever placed on P — **without reading P from disk**.

* :class:`LometSpaceMap` — the baseline layout Lomet's scheme requires
  (Section 4.2): a **full LSN per data page** recording the exact
  page_LSN at deallocation time.  The paper quantifies the overhead as
  47–63× depending on 6- vs 8-byte LSNs; experiment E4 measures it.

Both classes are *codecs plus id arithmetic*: they read and write entry
state inside SMP pages that the caller owns (typically fixed in a buffer
pool, with mutations logged like any other page update).  They hold no
state of their own beyond the geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.config import PAGE_DATA_SIZE
from repro.common.lsn import Lsn
from repro.storage.page import Page, PageType

# The space-overhead comparison in the paper considers both LSN widths.
LOMET_LSN_BYTES_CHOICES = (6, 8)


def smp_entries_per_page() -> int:
    """Data pages covered by one bitmap SMP (one bit each)."""
    return PAGE_DATA_SIZE * 8


def lomet_entries_per_page(lsn_bytes: int = 8) -> int:
    """Data pages covered by one Lomet SMP (one LSN each)."""
    if lsn_bytes not in LOMET_LSN_BYTES_CHOICES:
        raise ValueError(f"lsn_bytes must be one of {LOMET_LSN_BYTES_CHOICES}")
    return PAGE_DATA_SIZE // lsn_bytes


@dataclass(frozen=True)
class SmpSlot:
    """Where a data page's allocation entry lives: (SMP page id, index)."""

    smp_page_id: int
    index: int


class _Geometry:
    """Shared id arithmetic for both SMP layouts."""

    def __init__(
        self,
        smp_start: int,
        data_start: int,
        n_data_pages: int,
        entries_per_page: int,
    ) -> None:
        if n_data_pages <= 0:
            raise ValueError("need at least one data page")
        self.smp_start = smp_start
        self.data_start = data_start
        self.n_data_pages = n_data_pages
        self.entries_per_page = entries_per_page
        self.n_smp_pages = -(-n_data_pages // entries_per_page)  # ceil div
        smp_end = smp_start + self.n_smp_pages
        if smp_start <= data_start < smp_end or smp_start < data_start + n_data_pages <= smp_end:
            if not (data_start >= smp_end or data_start + n_data_pages <= smp_start):
                raise ValueError("SMP region overlaps the data region")

    def slot_for(self, data_page_id: int) -> SmpSlot:
        """Locate the SMP entry describing ``data_page_id``."""
        idx = data_page_id - self.data_start
        if not 0 <= idx < self.n_data_pages:
            raise ValueError(
                f"page {data_page_id} outside data region "
                f"[{self.data_start}, {self.data_start + self.n_data_pages})"
            )
        return SmpSlot(
            smp_page_id=self.smp_start + idx // self.entries_per_page,
            index=idx % self.entries_per_page,
        )

    def smp_page_ids(self) -> range:
        return range(self.smp_start, self.smp_start + self.n_smp_pages)


class SpaceMap(_Geometry):
    """DB2-style one-bit-per-page space map (the paper's layout)."""

    page_type = PageType.SPACE_MAP
    bits_per_entry = 1

    def __init__(self, smp_start: int, data_start: int, n_data_pages: int) -> None:
        super().__init__(smp_start, data_start, n_data_pages,
                         smp_entries_per_page())

    @staticmethod
    def read_allocated(smp_page: Page, index: int) -> bool:
        """Is the covered data page currently allocated?"""
        byte = smp_page.read_payload(index // 8, 1)[0]
        return bool(byte & (1 << (index % 8)))

    @staticmethod
    def write_allocated(smp_page: Page, index: int, allocated: bool) -> None:
        """Flip the allocation bit.  Caller logs this as an SMP update."""
        offset = index // 8
        byte = smp_page.read_payload(offset, 1)[0]
        mask = 1 << (index % 8)
        byte = (byte | mask) if allocated else (byte & ~mask)
        smp_page.write_payload(offset, bytes([byte]))

    @staticmethod
    def encode_entry_update(index: int, allocated: bool) -> bytes:
        """Redo/undo payload for logging one bit flip."""
        return bytes([index & 0xFF, (index >> 8) & 0xFF, int(allocated)])

    @staticmethod
    def decode_entry_update(payload: bytes) -> Tuple[int, bool]:
        index = payload[0] | (payload[1] << 8)
        return index, bool(payload[2])

    @staticmethod
    def apply_entry_update(smp_page: Page, payload: bytes) -> None:
        """Apply a logged bit flip during redo."""
        index, allocated = SpaceMap.decode_entry_update(payload)
        SpaceMap.write_allocated(smp_page, index, allocated)

    # ------------------------------------------------------------------
    # range updates: the mass-delete fast path (Section 4.2 / E6)
    # ------------------------------------------------------------------
    @staticmethod
    def write_range(smp_page: Page, start: int, count: int,
                    allocated: bool) -> None:
        """Flip ``count`` consecutive bits starting at ``start``.

        DB2's segmented-tablespace mass delete "just visits the space
        map pages and marks all the corresponding pages as being empty"
        — one logged range update per SMP page, no data-page reads.
        """
        for index in range(start, start + count):
            SpaceMap.write_allocated(smp_page, index, allocated)

    @staticmethod
    def encode_range_update(start: int, count: int, allocated: bool) -> bytes:
        return bytes([
            start & 0xFF, (start >> 8) & 0xFF,
            count & 0xFF, (count >> 8) & 0xFF,
            int(allocated),
        ])

    @staticmethod
    def decode_range_update(payload: bytes) -> Tuple[int, int, bool]:
        start = payload[0] | (payload[1] << 8)
        count = payload[2] | (payload[3] << 8)
        return start, count, bool(payload[4])

    @staticmethod
    def apply_range_update(smp_page: Page, payload: bytes) -> None:
        start, count, allocated = SpaceMap.decode_range_update(payload)
        SpaceMap.write_range(smp_page, start, count, allocated)


# Sentinel for "page is allocated" in a Lomet SMP entry: all-ones.
def _lomet_allocated_sentinel(lsn_bytes: int) -> int:
    return (1 << (8 * lsn_bytes)) - 1


class LometSpaceMap(_Geometry):
    """Lomet-baseline space map: full page_LSN per deallocated page.

    The entry for a deallocated page stores the exact LSN the page
    carried at deallocation time (needed because Lomet's redo test is
    ``page_LSN == BSI``, so the reallocation format record must continue
    the page's private LSN sequence).  Allocated pages hold an all-ones
    sentinel.
    """

    page_type = PageType.LOMET_SPACE_MAP

    def __init__(
        self,
        smp_start: int,
        data_start: int,
        n_data_pages: int,
        lsn_bytes: int = 8,
    ) -> None:
        super().__init__(smp_start, data_start, n_data_pages,
                         lomet_entries_per_page(lsn_bytes))
        self.lsn_bytes = lsn_bytes
        self.bits_per_entry = lsn_bytes * 8
        self._allocated = _lomet_allocated_sentinel(lsn_bytes)

    def read_entry(self, smp_page: Page, index: int) -> Tuple[bool, Lsn]:
        """Return ``(allocated, dealloc_lsn)`` for the covered page.

        ``dealloc_lsn`` is meaningful only when ``allocated`` is False.
        """
        raw = smp_page.read_payload(index * self.lsn_bytes, self.lsn_bytes)
        value = int.from_bytes(raw, "little")
        if value == self._allocated:
            return True, 0
        return False, value

    def write_allocated(self, smp_page: Page, index: int) -> None:
        """Mark the covered page allocated (entry becomes the sentinel)."""
        smp_page.write_payload(
            index * self.lsn_bytes,
            self._allocated.to_bytes(self.lsn_bytes, "little"),
        )

    def write_deallocated(self, smp_page: Page, index: int, lsn: Lsn) -> None:
        """Mark deallocated, recording the page's exact current LSN.

        This is the expensive requirement the paper criticises: the
        caller must *know* the page's LSN, which for operations like
        mass delete forces a read of every emptied page (experiment E6).
        """
        if not 0 <= lsn < self._allocated:
            raise ValueError(f"LSN {lsn} unrepresentable in {self.lsn_bytes} bytes")
        smp_page.write_payload(
            index * self.lsn_bytes, lsn.to_bytes(self.lsn_bytes, "little")
        )

    def overhead_factor(self) -> float:
        """Entry size in bits relative to the 1-bit DB2 layout."""
        return self.bits_per_entry / SpaceMap.bits_per_entry
