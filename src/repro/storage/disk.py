"""Simulated shared disk.

One :class:`SharedDisk` instance plays the role of the disk farm in
Figure 1: in the shared-disks architecture every DBMS instance reads and
writes it directly; in client-server only the server touches it.

The disk maintains CRC32 checksums on write and verifies them on read,
counts I/Os in a :class:`~repro.common.stats.StatsRegistry`, and offers
fault-injection hooks (:meth:`lose_page`, :meth:`corrupt_page`) that the
media-recovery experiment (E9) uses.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, Optional, Set

from repro.common.config import PAGE_SIZE
from repro.common.errors import MediaError
from repro.common.stats import (
    DISK_PAGE_READS,
    DISK_PAGE_WRITES,
    StatsRegistry,
)
from repro.storage.page import Page, PageType

# Checksum covers everything except the 4-byte checksum field itself
# (header bytes 17..20, see the header layout in repro.storage.page).
_CKSUM_OFFSET = 17
_CKSUM_END = 21


def _compute_checksum(image: bytes) -> int:
    return zlib.crc32(image[:_CKSUM_OFFSET] + image[_CKSUM_END:])


class SharedDisk:
    """A page-addressed, checksummed, crash-consistent page store.

    Writes are atomic at page granularity (the classic WAL assumption).
    ``capacity`` bounds the page-id space; pages are materialised lazily
    so sparse databases are cheap.
    """

    def __init__(
        self,
        capacity: int = 1 << 20,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("disk capacity must be positive")
        self.capacity = capacity
        self.stats = stats if stats is not None else StatsRegistry()
        self._pages: Dict[int, bytes] = {}
        self._lost: Set[int] = set()

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.capacity:
            raise ValueError(
                f"page id {page_id} outside disk capacity {self.capacity}"
            )

    def write_page(self, page: Page) -> None:
        """Persist ``page``, stamping a fresh checksum into the image."""
        self._check_page_id(page.page_id)
        image = bytearray(page.to_bytes())
        cksum = _compute_checksum(bytes(image))
        # Stamp the checksum directly into the image copy so the caller's
        # in-memory page is not mutated by the act of writing it.
        probe = Page(image)
        probe.set_checksum(cksum)
        self._pages[page.page_id] = probe.to_bytes()
        self._lost.discard(page.page_id)
        self.stats.incr(DISK_PAGE_WRITES)

    def read_page(self, page_id: int) -> Page:
        """Read a page; raises :class:`MediaError` for lost/corrupt pages.

        Reading a never-written page returns a zeroed (FREE) page, like
        a freshly formatted volume.
        """
        self._check_page_id(page_id)
        self.stats.incr(DISK_PAGE_READS)
        if page_id in self._lost:
            raise MediaError(f"page {page_id} unreadable (media failure)")
        image = self._pages.get(page_id)
        if image is None:
            blank = Page()
            blank.format(page_id, PageType.FREE)
            return blank
        page = Page.from_bytes(image)
        if _compute_checksum(image) != page.checksum:
            raise MediaError(
                f"page {page_id} failed checksum verification"
            )
        return page

    def page_exists(self, page_id: int) -> bool:
        """True if the page has ever been written (and not lost)."""
        return page_id in self._pages and page_id not in self._lost

    def page_lsn_on_disk(self, page_id: int) -> Optional[int]:
        """page_LSN of the disk version without counting an I/O.

        Test/verification helper: lets invariant checks inspect the disk
        state non-invasively.
        """
        image = self._pages.get(page_id)
        if image is None or page_id in self._lost:
            return None
        return Page.from_bytes(image).page_lsn

    def written_page_ids(self) -> Iterator[int]:
        """All page ids with a disk version, in ascending order."""
        return iter(sorted(self._pages))

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def lose_page(self, page_id: int) -> None:
        """Simulate a media failure: subsequent reads raise MediaError."""
        self._check_page_id(page_id)
        self._lost.add(page_id)

    def corrupt_page(self, page_id: int, byte_offset: int = 100) -> None:
        """Flip a byte in the stored image (checksum will catch it)."""
        image = self._pages.get(page_id)
        if image is None:
            raise ValueError(f"page {page_id} has no disk version to corrupt")
        if not 0 <= byte_offset < PAGE_SIZE:
            raise ValueError("byte offset outside the page")
        mutated = bytearray(image)
        mutated[byte_offset] ^= 0xFF
        self._pages[page_id] = bytes(mutated)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedDisk(capacity={self.capacity}, "
            f"pages={len(self._pages)}, lost={len(self._lost)})"
        )
