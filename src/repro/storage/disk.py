"""Simulated shared disk.

One :class:`SharedDisk` instance plays the role of the disk farm in
Figure 1: in the shared-disks architecture every DBMS instance reads and
writes it directly; in client-server only the server touches it.

The disk maintains CRC32 checksums on write and verifies them on read,
counts I/Os in a :class:`~repro.common.stats.StatsRegistry`, emits
disk-level trace events through the ``tracer=`` obs seam, and offers
fault hooks on two levels: the ad-hoc :meth:`lose_page` /
:meth:`corrupt_page` pokes the media-recovery experiment (E9) uses,
and the plan-driven ``injector=`` seam (:mod:`repro.faults`) consulted
at the ``disk.write`` / ``disk.read`` fault points — a torn write
persists a half-old/half-new image whose checksum check fails on the
next read, exactly how real torn writes are discovered.

Storage comes in two byte-identical flavours:

* **slab** (default) — pages live in large fixed-size ``bytearray``
  extents; each stored page is addressed through cached ``memoryview``
  windows (full image, checksum head, checksum tail).  A write is one
  copy into the window plus an in-place ``pack_into`` of the streamed
  CRC; a read verifies through the cached windows and hands out either
  a private image (:meth:`read_page`) or a borrowed copy-on-write view
  (:meth:`read_page_view`).  Extents are never resized — growing a
  ``bytearray`` with live ``memoryview`` exports raises
  ``BufferError`` — so the slab grows by appending extents.
* **classic** (``slab=False``) — one immutable ``bytes`` image per
  page in a dict, the original copy-per-operation spine.  Kept as the
  equivalence baseline: stored images, counters and traces must match
  the slab path byte for byte (``tests/test_slab.py``).
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.common.config import PAGE_SIZE
from repro.common.errors import FaultInjectedError, MediaError, TornPageError
from repro.common.stats import (
    DISK_PAGE_READS,
    DISK_PAGE_WRITES,
    StatsRegistry,
)
from repro.faults import points as fp
from repro.faults.injector import FAIL, NULL_INJECTOR, NullFaultInjector
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.storage.page import Page, PageType

# Checksum covers everything except the 4-byte checksum field itself
# (header bytes 17..20, see the header layout in repro.storage.page).
_CKSUM_OFFSET = 17
_CKSUM_END = 21
_CKSUM = struct.Struct("<I")

#: Pages per slab extent.  Extents are fixed-size so the cached page
#: windows exported over them stay valid for the disk's lifetime.
EXTENT_PAGES = 64

#: The cached windows of one stored page: (full image, bytes before the
#: checksum field, bytes after it).  Head+tail are exactly the CRC's
#: coverage, so a stamp is two ``zlib.crc32`` calls with no slicing.
_Windows = Tuple[memoryview, memoryview, memoryview]


def _compute_checksum(image: Union[bytes, bytearray, memoryview]) -> int:
    """CRC32 of everything but the checksum field, streamed.

    ``crc32(head)`` then ``crc32(tail, crc)`` over two zero-copy
    memoryview windows — the old form concatenated the two slices into
    a fresh page-sized ``bytes`` on *every* disk read and write.
    """
    view = memoryview(image)
    return zlib.crc32(view[_CKSUM_END:], zlib.crc32(view[:_CKSUM_OFFSET]))


class _SlabPages(Mapping[int, memoryview]):
    """Read-only mapping facade over the slab's stored pages.

    Keeps ``disk._pages`` introspection working in slab mode (tests
    digest stored images through it); values are read-only windows that
    alias live slab storage — callers needing a private copy go through
    :meth:`SharedDisk.raw_image`.
    """

    __slots__ = ("_disk",)

    def __init__(self, disk: "SharedDisk") -> None:
        self._disk = disk

    def __getitem__(self, page_id: int) -> memoryview:
        return self._disk._views[page_id][0].toreadonly()

    def __iter__(self) -> Iterator[int]:
        return iter(self._disk._views)

    def __len__(self) -> int:
        return len(self._disk._views)

    def __contains__(self, page_id: object) -> bool:
        return page_id in self._disk._views


class SharedDisk:
    """A page-addressed, checksummed, crash-consistent page store.

    Writes are atomic at page granularity (the classic WAL assumption).
    ``capacity`` bounds the page-id space; pages are materialised lazily
    so sparse databases are cheap.  ``slab`` selects the zero-copy slab
    spine (default) or the classic copy-per-operation dict — the two
    are byte-identical in stored images, counters and traces.
    """

    def __init__(
        self,
        capacity: int = 1 << 20,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
        slab: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("disk capacity must be positive")
        self.capacity = capacity
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = injector if injector is not None else NULL_INJECTOR
        self.slab = slab
        self._classic: Dict[int, bytes] = {}
        self._extents: List[bytearray] = []
        # page_id -> cached windows; insertion order = first-write order,
        # mirroring the classic dict's key order.
        self._views: Dict[int, _Windows] = {}
        self._pages: Mapping[int, Union[bytes, memoryview]] = (
            _SlabPages(self) if slab else self._classic
        )
        self._lost: Set[int] = set()

    # ------------------------------------------------------------------
    # slab geometry
    # ------------------------------------------------------------------
    def _slab_window(self, page_id: int) -> _Windows:
        """The cached windows for ``page_id``, allocating its slot (and
        a new extent when the current one is full) on first write."""
        views = self._views.get(page_id)
        if views is None:
            slot = len(self._views)
            extent_index, index = divmod(slot, EXTENT_PAGES)
            if extent_index == len(self._extents):
                self._extents.append(bytearray(EXTENT_PAGES * PAGE_SIZE))
            base = memoryview(self._extents[extent_index])
            start = index * PAGE_SIZE
            views = (
                base[start:start + PAGE_SIZE],
                base[start:start + _CKSUM_OFFSET],
                base[start + _CKSUM_END:start + PAGE_SIZE],
            )
            self._views[page_id] = views
        return views

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.capacity:
            raise ValueError(
                f"page id {page_id} outside disk capacity {self.capacity}"
            )

    def _stamped_image(self, page: Page) -> bytes:
        """The page's byte image with a fresh checksum stamped in.

        Stamping happens on a copy so the caller's in-memory page is
        not mutated by the act of writing it.  One working buffer and
        an in-place ``pack_into`` — the old path materialised four full
        pages (``to_bytes``, a ``bytes`` round-trip for the checksum, a
        probe :class:`Page`, and its ``to_bytes``).
        """
        image = bytearray(page.raw_buffer())
        _CKSUM.pack_into(image, _CKSUM_OFFSET, _compute_checksum(image))
        return bytes(image)

    def write_page(self, page: Page) -> None:
        """Persist ``page``, stamping a fresh checksum into the image."""
        page_id = page.page_id
        self._check_page_id(page_id)
        if self._injector.enabled:
            try:
                self._injector.fire(fp.DISK_WRITE, page=page_id)
            except TornPageError:
                # The device failed mid-write: keep a half-new/half-old
                # image on disk, then let the tear surface to the
                # caller.  The stored checksum covers the *intended*
                # image, so the next read fails verification.
                self._store_torn_image(page)
                raise
        if self.slab:
            full, head, tail = self._slab_window(page_id)
            full[:] = page.raw_buffer()
            _CKSUM.pack_into(full, _CKSUM_OFFSET,
                             zlib.crc32(tail, zlib.crc32(head)))
        else:
            self._classic[page_id] = self._stamped_image(page)
        self._lost.discard(page_id)
        self.stats.incr(DISK_PAGE_WRITES)
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_WRITE, page=page_id,
                             page_lsn=int(page.page_lsn))

    def write_many(self, pages: Sequence[Page],
                   page_ids: Optional[Sequence[int]] = None) -> int:
        """Batch write — semantically identical to N :meth:`write_page`
        calls (same stored bytes, same counter totals, same events).

        The slab fast lane: with tracing and fault injection off (their
        per-page semantics need the per-call path) the loop is nothing
        but copy-into-window + streamed CRC + ``pack_into``, with the
        lookups bound once and the write counter bumped once for the
        whole batch.  ``page_ids``, when the caller already knows them
        (the buffer pool indexes frames by page id), skips re-parsing
        each page header.  Returns the number of pages written.
        """
        if not pages:
            return 0
        if page_ids is None:
            page_ids = [page.page_id for page in pages]
        if not self.slab or self._injector.enabled or self.tracer.enabled:
            for page in pages:
                self.write_page(page)
            return len(pages)
        crc = zlib.crc32
        pack = _CKSUM.pack_into
        views = self._views
        discard = self._lost.discard
        capacity = self.capacity
        for page, page_id in zip(pages, page_ids):
            if not 0 <= page_id < capacity:
                self._check_page_id(page_id)
            windows = views.get(page_id)
            if windows is None:
                windows = self._slab_window(page_id)
            full, head, tail = windows
            full[:] = page._buf
            pack(full, _CKSUM_OFFSET, crc(tail, crc(head)))
            discard(page_id)
        self.stats.incr(DISK_PAGE_WRITES, len(pages))
        return len(pages)

    def _store_torn_image(self, page: Page) -> None:
        half = PAGE_SIZE // 2
        if self.slab:
            full, head, tail = self._slab_window(page.page_id)
            # The only staging copy this path needs: the old back half,
            # saved before the intended image lands in the window.
            old_tail = bytes(full[half:])
            full[:] = page.raw_buffer()
            _CKSUM.pack_into(full, _CKSUM_OFFSET,
                             zlib.crc32(tail, zlib.crc32(head)))
            if full[half:] == old_tail:
                # Old and new agree on the back half; tear a byte anyway
                # so the torn write is deterministically detectable.
                full[PAGE_SIZE - 1] ^= 0xFF
            else:
                full[half:] = old_tail
        else:
            intended = self._stamped_image(page)
            old = self._classic.get(page.page_id, bytes(PAGE_SIZE))
            torn = intended[:half] + old[half:]
            if torn == intended:
                mutated = bytearray(torn)
                mutated[-1] ^= 0xFF
                torn = bytes(mutated)
            self._classic[page.page_id] = torn
        self._lost.discard(page.page_id)
        self.stats.incr(DISK_PAGE_WRITES)

    def read_page(self, page_id: int) -> Page:
        """Read a page; raises :class:`MediaError` for lost/corrupt pages.

        Reading a never-written page returns a zeroed (FREE) page, like
        a freshly formatted volume.  The returned page owns a private
        image — mutating it never touches the disk.
        """
        return self._read(page_id, borrowed=False)

    def read_page_view(self, page_id: int) -> Page:
        """Like :meth:`read_page`, but zero-copy: the returned page is
        a borrowed copy-on-write view of the stored image.

        Reads go straight through the stored bytes; the first mutation
        detaches the page onto a private copy (so disk state can never
        be altered behind the checksum's back).  The view aliases live
        storage: a later ``write_page`` of the same page *is* visible
        through a still-borrowed view, so callers wanting a stable
        snapshot must copy (or use :meth:`read_page`).
        """
        return self._read(page_id, borrowed=True)

    def _read(self, page_id: int, borrowed: bool) -> Page:
        self._check_page_id(page_id)
        if self._injector.enabled:
            try:
                self._injector.fire(fp.DISK_READ, page=page_id)
            except FaultInjectedError as exc:
                if exc.action == FAIL:
                    # An injected read failure is indistinguishable from
                    # a genuine media error: media recovery applies.
                    raise MediaError(
                        f"page {page_id} unreadable (injected media error)"
                    ) from exc
                raise
        self.stats.incr(DISK_PAGE_READS)
        if page_id in self._lost:
            raise MediaError(f"page {page_id} unreadable (media failure)")
        if self.slab:
            views = self._views.get(page_id)
            if views is None:
                return self._blank_page(page_id)
            full, head, tail = views
            if zlib.crc32(tail, zlib.crc32(head)) != \
                    _CKSUM.unpack_from(full, _CKSUM_OFFSET)[0]:
                raise MediaError(
                    f"page {page_id} failed checksum verification"
                )
            page = Page(full.toreadonly()) if borrowed \
                else Page(bytearray(full))
        else:
            image = self._classic.get(page_id)
            if image is None:
                return self._blank_page(page_id)
            page = Page.view(image) if borrowed else Page.from_bytes(image)
            if _compute_checksum(image) != page.checksum:
                raise MediaError(
                    f"page {page_id} failed checksum verification"
                )
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_READ, page=page_id)
        return page

    def _blank_page(self, page_id: int) -> Page:
        blank = Page()
        blank.format(page_id, PageType.FREE)
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_READ, page=page_id)
        return blank

    def page_exists(self, page_id: int) -> bool:
        """True if the page has ever been written (and not lost)."""
        return page_id in self._pages and page_id not in self._lost

    def raw_image(self, page_id: int) -> bytes:
        """A private copy of the stored image, checksum included.

        The escape hatch for callers that must *own* the bytes — e.g.
        the archive dump (:meth:`ImageCopy.take
        <repro.storage.image_copy.ImageCopy.take>`): a slab window
        aliases live storage and would see every later write.
        """
        if self.slab:
            return bytes(self._views[page_id][0])
        return self._classic[page_id]

    def page_lsn_on_disk(self, page_id: int) -> Optional[int]:
        """page_LSN of the disk version without counting an I/O.

        Test/verification helper: lets invariant checks inspect the disk
        state non-invasively (zero-copy: reads through a borrowed view).
        """
        if page_id in self._lost:
            return None
        if self.slab:
            views = self._views.get(page_id)
            if views is None:
                return None
            return Page(views[0].toreadonly()).page_lsn
        image = self._classic.get(page_id)
        if image is None:
            return None
        return Page.view(image).page_lsn

    def written_page_ids(self) -> Iterator[int]:
        """All page ids with a disk version, in ascending order."""
        return iter(sorted(self._pages))

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def lose_page(self, page_id: int) -> None:
        """Simulate a media failure: subsequent reads raise MediaError."""
        self._check_page_id(page_id)
        self._lost.add(page_id)
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_LOSE, page=page_id)

    def corrupt_page(self, page_id: int, byte_offset: int = 100) -> None:
        """Flip a byte in the stored image (checksum will catch it)."""
        if page_id not in self._pages:
            raise ValueError(f"page {page_id} has no disk version to corrupt")
        if not 0 <= byte_offset < PAGE_SIZE:
            raise ValueError("byte offset outside the page")
        if self.slab:
            self._views[page_id][0][byte_offset] ^= 0xFF
        else:
            mutated = bytearray(self._classic[page_id])
            mutated[byte_offset] ^= 0xFF
            self._classic[page_id] = bytes(mutated)
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_CORRUPT, page=page_id,
                             offset=byte_offset)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedDisk(capacity={self.capacity}, slab={self.slab}, "
            f"pages={len(self._pages)}, lost={len(self._lost)})"
        )
