"""Simulated shared disk.

One :class:`SharedDisk` instance plays the role of the disk farm in
Figure 1: in the shared-disks architecture every DBMS instance reads and
writes it directly; in client-server only the server touches it.

The disk maintains CRC32 checksums on write and verifies them on read,
counts I/Os in a :class:`~repro.common.stats.StatsRegistry`, emits
disk-level trace events through the ``tracer=`` obs seam, and offers
fault hooks on two levels: the ad-hoc :meth:`lose_page` /
:meth:`corrupt_page` pokes the media-recovery experiment (E9) uses,
and the plan-driven ``injector=`` seam (:mod:`repro.faults`) consulted
at the ``disk.write`` / ``disk.read`` fault points — a torn write
persists a half-old/half-new image whose checksum check fails on the
next read, exactly how real torn writes are discovered.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, Optional, Set

from repro.common.config import PAGE_SIZE
from repro.common.errors import FaultInjectedError, MediaError, TornPageError
from repro.common.stats import (
    DISK_PAGE_READS,
    DISK_PAGE_WRITES,
    StatsRegistry,
)
from repro.faults import points as fp
from repro.faults.injector import FAIL, NULL_INJECTOR, NullFaultInjector
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.storage.page import Page, PageType

# Checksum covers everything except the 4-byte checksum field itself
# (header bytes 17..20, see the header layout in repro.storage.page).
_CKSUM_OFFSET = 17
_CKSUM_END = 21


def _compute_checksum(image: bytes) -> int:
    return zlib.crc32(image[:_CKSUM_OFFSET] + image[_CKSUM_END:])


class SharedDisk:
    """A page-addressed, checksummed, crash-consistent page store.

    Writes are atomic at page granularity (the classic WAL assumption).
    ``capacity`` bounds the page-id space; pages are materialised lazily
    so sparse databases are cheap.
    """

    def __init__(
        self,
        capacity: int = 1 << 20,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("disk capacity must be positive")
        self.capacity = capacity
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._pages: Dict[int, bytes] = {}
        self._lost: Set[int] = set()

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.capacity:
            raise ValueError(
                f"page id {page_id} outside disk capacity {self.capacity}"
            )

    def _stamped_image(self, page: Page) -> bytes:
        """The page's byte image with a fresh checksum stamped in.

        Stamping happens on a copy so the caller's in-memory page is
        not mutated by the act of writing it.
        """
        image = bytearray(page.to_bytes())
        cksum = _compute_checksum(bytes(image))
        probe = Page(image)
        probe.set_checksum(cksum)
        return probe.to_bytes()

    def write_page(self, page: Page) -> None:
        """Persist ``page``, stamping a fresh checksum into the image."""
        self._check_page_id(page.page_id)
        if self._injector.enabled:
            try:
                self._injector.fire(fp.DISK_WRITE, page=page.page_id)
            except TornPageError:
                # The device failed mid-write: keep a half-new/half-old
                # image on disk, then let the tear surface to the
                # caller.  The stored checksum covers the *intended*
                # image, so the next read fails verification.
                self._store_torn_image(page)
                raise
        self._pages[page.page_id] = self._stamped_image(page)
        self._lost.discard(page.page_id)
        self.stats.incr(DISK_PAGE_WRITES)
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_WRITE, page=page.page_id,
                             page_lsn=int(page.page_lsn))

    def _store_torn_image(self, page: Page) -> None:
        intended = self._stamped_image(page)
        old = self._pages.get(page.page_id, bytes(PAGE_SIZE))
        half = PAGE_SIZE // 2
        torn = intended[:half] + old[half:]
        if torn == intended:
            # Old and new agree on the back half; tear a byte anyway so
            # the torn write is deterministically detectable.
            mutated = bytearray(torn)
            mutated[-1] ^= 0xFF
            torn = bytes(mutated)
        self._pages[page.page_id] = torn
        self._lost.discard(page.page_id)
        self.stats.incr(DISK_PAGE_WRITES)

    def read_page(self, page_id: int) -> Page:
        """Read a page; raises :class:`MediaError` for lost/corrupt pages.

        Reading a never-written page returns a zeroed (FREE) page, like
        a freshly formatted volume.
        """
        self._check_page_id(page_id)
        if self._injector.enabled:
            try:
                self._injector.fire(fp.DISK_READ, page=page_id)
            except FaultInjectedError as exc:
                if exc.action == FAIL:
                    # An injected read failure is indistinguishable from
                    # a genuine media error: media recovery applies.
                    raise MediaError(
                        f"page {page_id} unreadable (injected media error)"
                    ) from exc
                raise
        self.stats.incr(DISK_PAGE_READS)
        if page_id in self._lost:
            raise MediaError(f"page {page_id} unreadable (media failure)")
        image = self._pages.get(page_id)
        if image is None:
            blank = Page()
            blank.format(page_id, PageType.FREE)
            if self.tracer.enabled:
                self.tracer.emit(ev.DISK_READ, page=page_id)
            return blank
        page = Page.from_bytes(image)
        if _compute_checksum(image) != page.checksum:
            raise MediaError(
                f"page {page_id} failed checksum verification"
            )
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_READ, page=page_id)
        return page

    def page_exists(self, page_id: int) -> bool:
        """True if the page has ever been written (and not lost)."""
        return page_id in self._pages and page_id not in self._lost

    def page_lsn_on_disk(self, page_id: int) -> Optional[int]:
        """page_LSN of the disk version without counting an I/O.

        Test/verification helper: lets invariant checks inspect the disk
        state non-invasively.
        """
        image = self._pages.get(page_id)
        if image is None or page_id in self._lost:
            return None
        return Page.from_bytes(image).page_lsn

    def written_page_ids(self) -> Iterator[int]:
        """All page ids with a disk version, in ascending order."""
        return iter(sorted(self._pages))

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def lose_page(self, page_id: int) -> None:
        """Simulate a media failure: subsequent reads raise MediaError."""
        self._check_page_id(page_id)
        self._lost.add(page_id)
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_LOSE, page=page_id)

    def corrupt_page(self, page_id: int, byte_offset: int = 100) -> None:
        """Flip a byte in the stored image (checksum will catch it)."""
        image = self._pages.get(page_id)
        if image is None:
            raise ValueError(f"page {page_id} has no disk version to corrupt")
        if not 0 <= byte_offset < PAGE_SIZE:
            raise ValueError("byte offset outside the page")
        mutated = bytearray(image)
        mutated[byte_offset] ^= 0xFF
        self._pages[page_id] = bytes(mutated)
        if self.tracer.enabled:
            self.tracer.emit(ev.DISK_CORRUPT, page=page_id,
                             offset=byte_offset)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedDisk(capacity={self.capacity}, "
            f"pages={len(self._pages)}, lost={len(self._lost)})"
        )
