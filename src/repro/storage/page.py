"""Slotted database pages with a packed binary header.

Layout (little-endian), total :data:`~repro.common.config.PAGE_SIZE`
bytes:

======================  =====  ==============================================
field                   bytes  meaning
======================  =====  ==============================================
page_id                 4      page number within the database
page_lsn                8      LSN/USN of the latest logged update (the
                               field the paper is about)
page_type               1      :class:`PageType`
slot_count              2      number of slot directory entries
free_offset             2      first free byte in the record area
checksum                4      CRC32 of the rest of the page (maintained by
                               the disk layer on write)
padding                 3
======================  =====  ==============================================

Records live in a record area growing forward from the header; the slot
directory grows backward from the end of the page, four bytes per slot
(``offset:u16, length:u16``).  A deleted record leaves a tombstone slot
(offset 0, length 0) so slot numbers remain stable — record-granularity
locks and log records name ``(page_id, slot)``.
"""

from __future__ import annotations

import enum
import struct
from typing import Iterator, List, Optional, Tuple, Union

from repro.common.config import (
    NULL_LSN,
    PAGE_DATA_SIZE,
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
)
from repro.common.errors import CorruptPageError
from repro.common.lsn import Lsn

_HEADER = struct.Struct("<IQBHHI3x")
assert _HEADER.size == PAGE_HEADER_SIZE

_SLOT = struct.Struct("<HH")
SLOT_SIZE = _SLOT.size

#: A page buffer is either privately owned (``bytearray``) or borrowed
#: (``memoryview`` over storage someone else owns — a disk slab window,
#: a classic stored image).  Borrowed pages are copy-on-write: the
#: first mutation detaches them onto a private ``bytearray``.
PageBuffer = Union[bytearray, memoryview]


class PageType(enum.IntEnum):
    """What a page holds; governs how its payload is interpreted."""

    FREE = 0          # deallocated / never formatted
    DATA = 1          # table records
    INDEX = 2         # index entries (reused heavily; see experiment E5)
    SPACE_MAP = 3     # allocation bitmap (SMP)
    LOMET_SPACE_MAP = 4  # Lomet-baseline SMP carrying full LSNs


class Page:
    """A mutable in-memory image of one database page.

    The same object is used in buffer pools on every system and, via
    :meth:`to_bytes` / :meth:`from_bytes`, as the disk representation.

    A page constructed over a ``memoryview`` (see :meth:`view`) is
    **borrowed**: reads go straight through the view (zero-copy), and
    the first mutation detaches the page onto a private ``bytearray``
    copy — so a borrowed page can never write through to the buffer it
    was viewing.  Pages over a ``bytearray`` are owned and mutate in
    place, exactly as before.
    """

    __slots__ = ("_buf", "_owned")

    def __init__(self, buf: Optional[PageBuffer] = None) -> None:
        if buf is None:
            buf = bytearray(PAGE_SIZE)
        if len(buf) != PAGE_SIZE:
            raise CorruptPageError(
                f"page buffer must be {PAGE_SIZE} bytes, got {len(buf)}"
            )
        self._buf = buf
        self._owned = not isinstance(buf, memoryview)

    @classmethod
    def view(cls, buf: PageBuffer) -> "Page":
        """A borrowed (copy-on-write) page over ``buf`` — zero-copy.

        ``buf`` may be any PAGE_SIZE buffer (``bytes``, ``bytearray``,
        ``memoryview``); the page never writes through it.
        """
        return cls(memoryview(buf))

    @property
    def is_borrowed(self) -> bool:
        """True while the page reads through a view it does not own."""
        return not self._owned

    def _ensure_owned(self) -> None:
        """Copy-on-write detach: first mutation of a borrowed page."""
        if not self._owned:
            self._buf = bytearray(self._buf)
            self._owned = True

    def raw_buffer(self) -> PageBuffer:
        """The backing buffer, zero-copy (storage-layer use only).

        Callers must treat the buffer as read-only; mutating it would
        bypass the copy-on-write discipline.
        """
        return self._buf

    # ------------------------------------------------------------------
    # header accessors
    # ------------------------------------------------------------------
    def _header(self) -> Tuple[int, int, int, int, int, int]:
        return _HEADER.unpack_from(self._buf, 0)

    def _set_header(
        self,
        page_id: int,
        page_lsn: int,
        page_type: int,
        slot_count: int,
        free_offset: int,
        checksum: int,
    ) -> None:
        _HEADER.pack_into(
            self._buf, 0, page_id, page_lsn, page_type, slot_count,
            free_offset, checksum,
        )

    @property
    def page_id(self) -> int:
        return self._header()[0]

    @property
    def page_lsn(self) -> Lsn:
        """The update sequence number of the page (paper, Section 3.2)."""
        return self._header()[1]

    @page_lsn.setter
    def page_lsn(self, value: Lsn) -> None:
        if value < 0:
            raise ValueError("page_lsn cannot be negative")
        self._ensure_owned()
        h = list(self._header())
        h[1] = value
        self._set_header(*h)

    @property
    def page_type(self) -> PageType:
        return PageType(self._header()[2])

    @property
    def slot_count(self) -> int:
        return self._header()[3]

    @property
    def free_offset(self) -> int:
        return self._header()[4]

    @property
    def checksum(self) -> int:
        return self._header()[5]

    def set_checksum(self, value: int) -> None:
        self._ensure_owned()
        h = list(self._header())
        h[5] = value
        self._set_header(*h)

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def format(
        self, page_id: int, page_type: PageType, page_lsn: Lsn = NULL_LSN
    ) -> None:
        """(Re)initialise the page as empty.

        Used both when a page is first allocated and when a previously
        deallocated page is *reallocated without being read from disk* —
        in that case the caller must supply a ``page_lsn`` derived from
        the covering space map page (paper, Section 3.4).
        """
        self._ensure_owned()
        self._buf[:] = bytes(PAGE_SIZE)
        self._set_header(page_id, page_lsn, int(page_type),
                         0, PAGE_HEADER_SIZE, 0)

    # ------------------------------------------------------------------
    # slot directory helpers
    # ------------------------------------------------------------------
    def _slot_pos(self, slot: int) -> int:
        return PAGE_SIZE - SLOT_SIZE * (slot + 1)

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise IndexError(f"slot {slot} out of range on page {self.page_id}")
        return _SLOT.unpack_from(self._buf, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._buf, self._slot_pos(slot), offset, length)

    def free_space(self) -> int:
        """Bytes available for a new record *including* its slot entry."""
        dir_start = PAGE_SIZE - SLOT_SIZE * self.slot_count
        return dir_start - self.free_offset

    # ------------------------------------------------------------------
    # record operations
    # ------------------------------------------------------------------
    def insert_record(self, payload: bytes) -> int:
        """Insert ``payload`` and return its slot number.

        Reuses a tombstone slot when one exists so slot numbers stay
        dense under churn; otherwise grows the directory.
        """
        if not payload:
            raise ValueError("records must be non-empty")
        self._ensure_owned()
        slot = self._find_tombstone()
        extra = 0 if slot is not None else SLOT_SIZE
        if len(payload) + extra > self.free_space():
            self._compact()
            if len(payload) + extra > self.free_space():
                raise CorruptPageError(
                    f"page {self.page_id} full "
                    f"({self.free_space()} bytes free, need {len(payload) + extra})"
                )
        offset = self.free_offset
        self._buf[offset:offset + len(payload)] = payload
        h = list(self._header())
        if slot is None:
            slot = self.slot_count
            h[3] = slot + 1
        h[4] = offset + len(payload)
        self._set_header(*h)
        self._write_slot(slot, offset, len(payload))
        return slot

    def insert_record_at(self, slot: int, payload: bytes) -> None:
        """Insert ``payload`` into a specific slot (redo path).

        Restart redo replays logged inserts physiologically: the log
        record names the slot the original insert chose, and replay must
        land the record in exactly that slot.  The slot must be beyond
        the current directory or a tombstone.
        """
        if not payload:
            raise ValueError("records must be non-empty")
        self._ensure_owned()
        if slot < self.slot_count and self._read_slot(slot)[1] != 0:
            raise CorruptPageError(
                f"slot {slot} on page {self.page_id} already occupied"
            )
        new_slots = max(0, slot + 1 - self.slot_count)
        need = len(payload) + SLOT_SIZE * new_slots
        if need > self.free_space():
            self._compact()
            if need > self.free_space():
                raise CorruptPageError(
                    f"page {self.page_id} full (redo insert at slot {slot})"
                )
        offset = self.free_offset
        self._buf[offset:offset + len(payload)] = payload
        h = list(self._header())
        if slot >= self.slot_count:
            # Materialise intermediate slots as tombstones.
            for s in range(self.slot_count, slot + 1):
                h[3] = s + 1
                self._set_header(*h)
                self._write_slot(s, 0, 0)
        h = list(self._header())
        h[4] = offset + len(payload)
        self._set_header(*h)
        self._write_slot(slot, offset, len(payload))

    def read_record(self, slot: int) -> Optional[bytes]:
        """Payload stored in ``slot``, or ``None`` for a tombstone."""
        offset, length = self._read_slot(slot)
        if length == 0:
            return None
        return bytes(self._buf[offset:offset + length])

    def update_record(self, slot: int, payload: bytes) -> None:
        """Replace the payload in ``slot`` (record must exist)."""
        if not payload:
            raise ValueError("records must be non-empty")
        self._ensure_owned()
        offset, length = self._read_slot(slot)
        if length == 0:
            raise CorruptPageError(
                f"slot {slot} on page {self.page_id} is a tombstone"
            )
        if len(payload) <= length:
            self._buf[offset:offset + len(payload)] = payload
            if len(payload) != length:
                self._write_slot(slot, offset, len(payload))
            return
        # Grow: move the record to fresh space at the end of the area.
        if len(payload) > self.free_space():
            self._compact()
            offset, length = self._read_slot(slot)
            if len(payload) > self.free_space():
                raise CorruptPageError(
                    f"page {self.page_id} full updating slot {slot}"
                )
        new_offset = self.free_offset
        self._buf[new_offset:new_offset + len(payload)] = payload
        h = list(self._header())
        h[4] = new_offset + len(payload)
        self._set_header(*h)
        self._write_slot(slot, new_offset, len(payload))

    def delete_record(self, slot: int) -> None:
        """Tombstone ``slot``; its space is reclaimed on compaction."""
        self._ensure_owned()
        offset, length = self._read_slot(slot)
        if length == 0:
            raise CorruptPageError(
                f"slot {slot} on page {self.page_id} already deleted"
            )
        self._write_slot(slot, 0, 0)

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot, payload)`` for every live record."""
        for slot in range(self.slot_count):
            payload = self.read_record(slot)
            if payload is not None:
                yield slot, payload

    def record_count(self) -> int:
        """Number of live (non-tombstone) records."""
        return sum(1 for _ in self.records())

    def is_empty(self) -> bool:
        """True when no live record remains (candidate for dealloc)."""
        return self.record_count() == 0

    def _find_tombstone(self) -> Optional[int]:
        for slot in range(self.slot_count):
            if self._read_slot(slot)[1] == 0:
                return slot
        return None

    def _compact(self) -> None:
        """Rewrite the record area densely, preserving slot numbers."""
        self._ensure_owned()
        live: List[Tuple[int, bytes]] = []
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if length:
                live.append((slot, bytes(self._buf[offset:offset + length])))
        offset = PAGE_HEADER_SIZE
        for slot, payload in live:
            self._buf[offset:offset + len(payload)] = payload
            self._write_slot(slot, offset, len(payload))
            offset += len(payload)
        h = list(self._header())
        h[4] = offset
        self._set_header(*h)

    # ------------------------------------------------------------------
    # raw payload access (used by space map pages, which are bitmaps
    # rather than slotted records)
    # ------------------------------------------------------------------
    def read_payload(self, offset: int, length: int) -> bytes:
        """Read raw bytes from the data area (payload coordinates)."""
        if offset < 0 or offset + length > PAGE_DATA_SIZE:
            raise IndexError("payload read out of range")
        start = PAGE_HEADER_SIZE + offset
        return bytes(self._buf[start:start + length])

    def write_payload(self, offset: int, data: bytes) -> None:
        """Write raw bytes into the data area (payload coordinates)."""
        if offset < 0 or offset + len(data) > PAGE_DATA_SIZE:
            raise IndexError("payload write out of range")
        self._ensure_owned()
        start = PAGE_HEADER_SIZE + offset
        self._buf[start:start + len(data)] = data

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural sanity check of the header and slot directory.

        Checksums (maintained by the disk layer) catch bit rot; this
        catches *logic* corruption — impossible offsets, overlapping
        regions, slots pointing outside the record area.  Raises
        :class:`CorruptPageError` on the first problem found.
        """
        page_id, _, page_type, slot_count, free_offset, _ = self._header()
        try:
            PageType(page_type)
        except ValueError:
            raise CorruptPageError(
                f"page {page_id}: unknown page type {page_type}"
            )
        dir_start = PAGE_SIZE - SLOT_SIZE * slot_count
        if not PAGE_HEADER_SIZE <= free_offset <= dir_start:
            raise CorruptPageError(
                f"page {page_id}: free_offset {free_offset} outside "
                f"[{PAGE_HEADER_SIZE}, {dir_start}]"
            )
        for slot in range(slot_count):
            offset, length = self._read_slot(slot)
            if length == 0:
                continue  # tombstone
            if offset < PAGE_HEADER_SIZE or offset + length > free_offset:
                raise CorruptPageError(
                    f"page {page_id}: slot {slot} spans "
                    f"[{offset}, {offset + length}) outside the record area"
                )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The full on-disk image of the page."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Page":
        """Reconstruct a page from its on-disk image."""
        return cls(bytearray(data))

    def copy(self) -> "Page":
        """Deep copy (used for image copies and cross-system transfer)."""
        return Page(bytearray(self._buf))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Page(id={self.page_id}, lsn={self.page_lsn}, "
            f"type={self.page_type.name}, slots={self.slot_count})"
        )
