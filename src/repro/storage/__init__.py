"""Byte-level storage engine: slotted pages, disks, space maps, dumps.

The paper's algorithms are stated in terms of a concrete page header
field (``page_LSN``) and space map pages (SMPs) with one allocation bit
per data page.  This package implements that layout for real — pages
are 4 KiB byte buffers with packed headers and checksums — so that the
recovery experiments exercise genuine serialization boundaries.
"""

from repro.storage.disk import SharedDisk
from repro.storage.image_copy import ImageCopy
from repro.storage.page import Page, PageType
from repro.storage.space_map import (
    LOMET_LSN_BYTES_CHOICES,
    LometSpaceMap,
    SpaceMap,
    smp_entries_per_page,
)

__all__ = [
    "ImageCopy",
    "LOMET_LSN_BYTES_CHOICES",
    "LometSpaceMap",
    "Page",
    "PageType",
    "SharedDisk",
    "SpaceMap",
    "smp_entries_per_page",
]
