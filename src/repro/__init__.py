"""repro — Mohan & Narang's multi-system DBMS recovery, reproduced.

A production-quality Python reproduction of *"Data Base Recovery in
Shared Disks and Client-Server Architectures"* (C. Mohan, Inderpal
Narang, ICDCS 1992): clockless LSN (USN) generation, write-ahead
logging with private local logs, ARIES restart and media recovery,
the Commit_LSN optimization, and both multi-system architectures the
paper covers — shared disks (SD) and client-server (CS) — plus the
baseline schemes the paper compares against (naive log-address LSNs,
Lomet's BSI scheme, and a VAXcluster-style shared global log).

Quickstart::

    from repro import SDComplex, PageType

    sd = SDComplex()
    s1 = sd.add_instance(1)
    s2 = sd.add_instance(2)

    txn = s1.begin()
    page_id = s1.allocate_page(txn, PageType.DATA)
    slot = s1.insert(txn, page_id, b"hello")
    s1.commit(txn)

    txn2 = s2.begin()
    s2.update(txn2, page_id, slot, b"world")   # page migrates to S2
    s2.commit(txn2)

    sd.crash_instance(2)
    sd.restart_instance(2)                     # committed update survives
"""

from repro.common import (
    LogAddress,
    Lsn,
    NULL_LSN,
    PAGE_SIZE,
    ReproError,
    SkewedClock,
    StatsRegistry,
)
from repro.access import BTree, SegmentedTable
from repro.buffer import BufferControlBlock, BufferPool
from repro.cs import CsClient, CsServer, CsSystem
from repro.locking import LockManager, LockMode, LockStatus
from repro.recovery import (
    CommitLsnService,
    recover_page_from_media,
    restart_recovery,
    take_checkpoint,
)
from repro.net import Network
from repro.sd import CoherencyController, DbmsInstance, SDComplex
from repro.storage import (
    ImageCopy,
    LometSpaceMap,
    Page,
    PageType,
    SharedDisk,
    SpaceMap,
)
from repro.txn import Transaction, TransactionManager, TxnState
from repro.wal import (
    ClientLogManager,
    LogManager,
    LogRecord,
    RecordKind,
    lomet_merge,
    merge_local_logs,
)

__version__ = "1.0.0"

__all__ = [
    "BTree",
    "BufferControlBlock",
    "BufferPool",
    "ClientLogManager",
    "CoherencyController",
    "CommitLsnService",
    "CsClient",
    "CsServer",
    "CsSystem",
    "DbmsInstance",
    "ImageCopy",
    "LockManager",
    "LockMode",
    "LockStatus",
    "LogAddress",
    "LogManager",
    "LogRecord",
    "LometSpaceMap",
    "Lsn",
    "NULL_LSN",
    "Network",
    "PAGE_SIZE",
    "Page",
    "PageType",
    "RecordKind",
    "ReproError",
    "SDComplex",
    "SegmentedTable",
    "SharedDisk",
    "SkewedClock",
    "SpaceMap",
    "StatsRegistry",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "lomet_merge",
    "merge_local_logs",
    "recover_page_from_media",
    "restart_recovery",
    "take_checkpoint",
    "__version__",
]
