"""Media recovery: image copy + merged-log redo (Section 3.2.2).

When a disk page is unreadable, the page is rebuilt by restoring its
last image copy and redoing, in complex-wide LSN order, every log
record written for it since — across **all** the local logs, merged by
comparing LSNs only (the simplification the USN scheme buys; contrast
with :func:`repro.wal.merge.lomet_merge`).

Records with equal LSNs from different logs can be emitted in either
order because they necessarily describe different pages (per-page
monotonicity); for a single page's recovery the filtered stream is
strictly increasing.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.stats import StatsRegistry
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.recovery.apply import apply_redo
from repro.storage.disk import SharedDisk
from repro.storage.image_copy import ImageCopy
from repro.storage.page import Page, PageType
from repro.wal.log_manager import LogManager
from repro.wal.merge import merge_local_logs


def recover_page_from_media(
    page_id: int,
    image_copy: Optional[ImageCopy],
    logs: Iterable[LogManager],
    disk: Optional[SharedDisk] = None,
    stats: Optional[StatsRegistry] = None,
    use_dump_offsets: bool = True,
    tracer: Optional[NullTracer] = None,
) -> Page:
    """Rebuild ``page_id`` from its image copy and the merged logs.

    If ``disk`` is given, the recovered page is written back (clearing
    any simulated media failure for that page).  When the image copy
    recorded per-log offsets at dump time, the merge scan starts there
    (``use_dump_offsets=False`` forces a full scan, e.g. for pages born
    after the dump).  Returns the page.
    """
    if tracer is None:
        tracer = NULL_TRACER
    with tracer.span(ev.SPAN_RECOVERY, mode="media", page=page_id):
        from_offsets = None
        if image_copy is not None and image_copy.has_page(page_id):
            page = image_copy.restore_page(page_id)
            if use_dump_offsets and image_copy.log_offsets:
                from_offsets = image_copy.log_offsets
        else:
            # Page was born after the dump: recovery starts from a blank
            # page and the page's FORMAT record will rebuild it, so the
            # scan must cover the full logs.
            page = Page()
            page.format(page_id, PageType.FREE)
        for _, record in merge_local_logs(logs, stats=stats,
                                          from_offsets=from_offsets):
            if record.page_id != page_id:
                continue
            if record.lsn > page.page_lsn:
                apply_redo(page, record)
        if disk is not None:
            disk.write_page(page)
    return page


def recover_database_from_media(
    image_copy: Optional[ImageCopy],
    logs: Iterable[LogManager],
    disk: SharedDisk,
    page_ids: Iterable[int],
    stats: Optional[StatsRegistry] = None,
    tracer: Optional[NullTracer] = None,
) -> int:
    """Rebuild many pages in one merged-log pass; returns pages rebuilt.

    The merged stream is consumed once and dispatched per page — the
    shape a real media-recovery utility uses, and what experiment E9
    measures for merge cost.
    """
    if tracer is None:
        tracer = NULL_TRACER
    wanted = set(page_ids)
    with tracer.span(ev.SPAN_RECOVERY, mode="media", pages=len(wanted)):
        pages = {}
        for page_id in sorted(wanted):
            if image_copy is not None and image_copy.has_page(page_id):
                pages[page_id] = image_copy.restore_page(page_id)
            else:
                blank = Page()
                blank.format(page_id, PageType.FREE)
                pages[page_id] = blank
        for _, record in merge_local_logs(logs, stats=stats):
            page = pages.get(record.page_id)
            if page is not None and record.lsn > page.page_lsn:
                apply_redo(page, record)
        for page_id in sorted(pages):
            disk.write_page(pages[page_id])
    return len(pages)
