"""The Commit_LSN optimization across a complex of systems.

Commit_LSN [Moha90b] is the LSN of the first log record of the oldest
update transaction still executing.  Every page whose page_LSN is below
it holds only committed data, so cursor-stability readers can skip
record locks entirely.

In SD and CS the value must cover transactions on *all* systems
(Section 2, problem 4), so each system contributes the first-LSN of its
oldest active update transaction — or, when it has none,
``Local_Max_LSN + 1`` — and the complex-wide Commit_LSN is the minimum
contribution.  This is exactly why the paper cares that LSNs stay
*close together* across systems: a system whose Local_Max_LSN lags
drags the minimum into the past and the cheap check starts failing
(experiment E2).

Crashed systems freeze their last known contribution: their in-flight
transactions' updates are still uncommitted on shared pages until
restart recovery undoes them, so the service must not let the global
value advance past them.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.common.lsn import Lsn
from repro.common.stats import (
    COMMIT_LSN_HITS,
    COMMIT_LSN_MISSES,
    StatsRegistry,
)
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer


class CommitLsnMember(Protocol):
    """What the service needs from each system."""

    system_id: int
    crashed: bool

    @property
    def txns(self): ...

    @property
    def log(self): ...


class CommitLsnService:
    """Computes and checks the complex-wide Commit_LSN."""

    def __init__(
        self,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._members: Dict[int, CommitLsnMember] = {}
        self._frozen: Dict[int, Lsn] = {}

    def register(self, member: CommitLsnMember) -> None:
        self._members[member.system_id] = member

    def deregister(self, system_id: int) -> None:
        self._members.pop(system_id, None)
        self._frozen.pop(system_id, None)

    # ------------------------------------------------------------------
    def local_commit_lsn(self, member: CommitLsnMember) -> Lsn:
        """One system's contribution to the global minimum."""
        first = member.txns.oldest_active_first_lsn()
        if first is not None:
            return first
        return member.log.local_max_lsn + 1

    def global_commit_lsn(self) -> Lsn:
        """Minimum contribution across all systems.

        Up systems contribute live values (and refresh their frozen
        snapshot); crashed systems contribute their last live value.
        """
        contributions = []
        for system_id, member in self._members.items():
            if member.crashed:
                contributions.append(self._frozen.get(system_id, 1))
            else:
                value = self.local_commit_lsn(member)
                self._frozen[system_id] = value
                contributions.append(value)
        return min(contributions) if contributions else 1

    def check(self, page_lsn: Lsn) -> bool:
        """The Commit_LSN test: is everything on this page committed?

        Counts hits and misses so experiments can report the rate.
        """
        commit_lsn = self.global_commit_lsn()
        hit = page_lsn < commit_lsn
        self.stats.incr(COMMIT_LSN_HITS if hit else COMMIT_LSN_MISSES)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.COMMIT_LSN_CHECK,
                page_lsn=int(page_lsn),
                commit_lsn=int(commit_lsn),
                hit=hit,
            )
        return hit

    def hit_rate(self) -> float:
        """Fraction of checks that avoided locking (0.0 if no checks)."""
        hits = self.stats.get(COMMIT_LSN_HITS)
        misses = self.stats.get(COMMIT_LSN_MISSES)
        total = hits + misses
        return hits / total if total else 0.0
