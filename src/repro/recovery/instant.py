"""Instant restart: redo-only, on-demand, per-page recovery.

Classic restart (:mod:`repro.recovery.aries`) replays the whole redo
scan before the system reopens, so perceived downtime is O(log length).
Lomet et al. (*Implementing Performance Competitive Logical Recovery*)
and Sauer/Haerder (*fast REDO-only recovery*) both observe that the
same machinery can instead recover each page lazily on first touch,
shrinking downtime to O(analysis + losers).  This module implements
that mode over the paper's multi-system substrate:

1. **Analysis** runs eagerly (:func:`repro.recovery.aries.analysis_pass`
   — the shared first act of every restart flavour) and yields the
   dirty page table and the loser transactions.
2. **Per-page redo chains** are indexed from the stable log(s) using
   PR 5's candidate collectors — :func:`repro.cluster.redo.
   collect_local_redo` under the medium transfer scheme and for the CS
   server (single-log redo), :func:`repro.cluster.redo.
   collect_merged_redo` over the merged USN stream under the fast
   scheme — i.e. exactly the records the eager serial pass would
   consider, in exactly its order.
3. **Undo runs eagerly at open**, reusing the eager
   :func:`~repro.recovery.aries._undo_pass` verbatim with the same
   page fixers the eager path uses.  Undo touches only loser pages, so
   this keeps open cost proportional to the in-flight work at crash
   while the bulk of the redo scan stays lazy — and it is what makes
   the equivalence guarantee below hold by construction: the CLRs are
   appended in the same order, against the same page images, with the
   same ``page_lsn`` hints, as under eager restart.
4. Everything else recovers **on demand**: the buffer pool's
   ``recovery_intercept`` seam (and, in the SD complex, a guard at the
   top of coherency access) routes the first touch of a still-pending
   page through :meth:`InstantRecoveryManager.recover_page`, which
   applies the page's chain straight to the shared disk.  A
   deterministic **sweeper** (:meth:`~InstantRecoveryManager.sweep`)
   drains the remaining pages in sorted page-id order in tick-driven
   increments.

Equivalence discipline (the property the chaos ``restart`` drill
enforces with SHA-256 disk digests): per page, instant restart applies
the same records under the same ``record.lsn > page_LSN`` screening
from the same disk base image as the eager pass, and writes the page
back only when a record actually applied (mirroring
:func:`~repro.cluster.redo.replay_partitioned`'s modified-only
write-back).  Application *order between pages* differs, but order
only matters within a page — the same argument that justified PR 5's
partitioned redo.  Once every manager has drained, the disk image is
byte-identical to the eager one.

WAL is satisfied throughout: every record in a chain comes from a
stable post-crash log, so writing a chain-applied image needs no log
force first.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.stats import (
    INSTANT_DEMAND_RECOVERIES,
    INSTANT_OPENS,
    INSTANT_PAGES_RECOVERED,
    INSTANT_RECORDS_REDONE,
    INSTANT_RECORDS_SKIPPED,
    INSTANT_SWEEP_RECOVERIES,
    INSTANT_SWEEP_TICKS,
    StatsRegistry,
)
from repro.faults import points as fp
from repro.faults.injector import NULL_INJECTOR, NullFaultInjector
from repro.obs import events as ev
from repro.recovery import aries
from repro.recovery.apply import apply_redo
from repro.recovery.aries import RestartSummary, analysis_pass
from repro.wal.records import LogRecord


class InstantRecoveryManager:
    """Open-for-business restart: eager analysis + undo, lazy redo.

    ``instance`` is duck-typed like everywhere in ``repro.recovery``:
    it needs ``log``, ``pool``, ``system_id`` and (optionally) a
    ``tracer``.  ``mode`` names the chain source for the trace stream:
    ``"medium"`` / ``"fast"`` for SD instances, ``"cs"`` for the
    server.  The wiring (``SDComplex`` / ``CsServer``) owns the
    buffer-pool intercept and any cross-manager routing; ``on_drained``
    is its deregistration callback, invoked exactly once when the last
    pending page has been recovered.
    """

    def __init__(
        self,
        instance,
        mode: str,
        stats: Optional[StatsRegistry] = None,
        injector: Optional[NullFaultInjector] = None,
        on_drained: Optional[Callable[["InstantRecoveryManager"], None]]
        = None,
    ) -> None:
        self.instance = instance
        self.mode = mode
        self.tracer = aries._tracer_of(instance)
        self.stats = stats
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.on_drained = on_drained
        self.summary = RestartSummary()
        self.dpt: Dict[int, tuple] = {}
        self.losers: Dict[int, int] = {}
        self._chains: Dict[int, List[LogRecord]] = {}
        self._opened = False
        self._drained = False
        self.demand_recoveries = 0
        self.sweep_recoveries = 0

    # ------------------------------------------------------------------
    # open sequence
    # ------------------------------------------------------------------
    def analyze(self) -> None:
        """Re-seed the Lamport clock and run the analysis pass."""
        log = self.instance.log
        system_id = self.instance.system_id
        # The Lamport clock must be re-seeded before any CLR is
        # appended — same rule as eager restart.
        log.recover_local_max()
        with self.tracer.span(ev.SPAN_ANALYSIS, system=system_id):
            self.dpt, self.losers = analysis_pass(log, self.summary)
        self.summary.dirty_pages_at_crash = len(self.dpt)
        self.summary.loser_transactions = len(self.losers)
        if self.dpt:
            redo_start = min(rec_addr for _, rec_addr in self.dpt.values())
            self.summary.redo_scan_start = redo_start

    def index_chains(self, chains: Dict[int, List[LogRecord]]) -> None:
        """Install the per-page redo chains (candidate-collector
        output); pages with a non-empty chain become *pending*."""
        self._chains = {
            page_id: records
            for page_id, records in chains.items() if records
        }

    def open(self, fix_page=None, unfix_page=None) -> RestartSummary:
        """Declare the pending set, then roll back the losers eagerly.

        ``fix_page``/``unfix_page`` are the *eager* undo fixers for
        this system (coherency-mediated for SD, the plain pool for the
        CS server); the wiring has already arranged that any fix of a
        still-pending page recovers it first, so the CLRs land on
        exactly the images eager undo would see.
        """
        instance = self.instance
        system_id = instance.system_id
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(ev.RECOVERY_BEGIN, system=system_id, mode="instant")
            tracer.emit(
                ev.INSTANT_OPEN, system=system_id, mode=self.mode,
                pages=sorted(self._chains), losers=len(self.losers),
            )
        if self.stats is not None:
            self.stats.incr(INSTANT_OPENS)
        self._opened = True
        with tracer.span(ev.SPAN_UNDO, system=system_id):
            aries._undo_pass(instance, self.losers, self.summary,
                             fix_page=fix_page, unfix_page=unfix_page)
        instance.log.force()
        if not self._chains:
            self._finish()
        return self.summary

    # ------------------------------------------------------------------
    # lazy per-page recovery
    # ------------------------------------------------------------------
    def pending_pages(self) -> List[int]:
        """Page ids whose redo chain has not been applied yet, sorted."""
        return sorted(self._chains)

    @property
    def drained(self) -> bool:
        """True once every pending page has been recovered."""
        return self._drained

    def recover_page(self, page_id: int, via: str = "demand") -> bool:
        """Apply ``page_id``'s redo chain to the shared disk, if pending.

        Returns True when the page was pending and is now recovered.
        Exception-safe against an injected fault at ``instant.recover``:
        the chain is consumed only after the write-back, so the next
        touch retries from the same stable records.
        """
        records = self._chains.get(page_id)
        if records is None:
            return False
        instance = self.instance
        system_id = instance.system_id
        tracer = self.tracer
        with tracer.span(ev.SPAN_RECOVER_PAGE, system=system_id,
                         page=page_id, via=via):
            self.injector.fire(fp.INSTANT_RECOVER, system=system_id,
                               page=page_id)
            disk = instance.pool.disk
            # Copy-on-write view: a chain that screens out entirely
            # never copies the image (and the page is left unwritten,
            # mirroring replay_partitioned's modified-only write-back).
            page = disk.read_page_view(page_id)
            redone = skipped = 0
            sabotage = aries._SABOTAGE_DISABLE_REDO_SCREENING
            emitted: List[tuple] = []
            for record in records:
                if sabotage or record.lsn > page.page_lsn:
                    page_lsn_prev = page.page_lsn
                    apply_redo(page, record)
                    redone += 1
                    emitted.append(
                        (True, int(record.lsn), int(page_lsn_prev)))
                else:
                    skipped += 1
                    emitted.append(
                        (False, int(record.lsn), int(page.page_lsn)))
            if redone:
                disk.write_page(page)
            del self._chains[page_id]
            self.summary.records_redone += redone
            self.summary.redo_skipped_by_lsn += skipped
            if via == "demand":
                self.demand_recoveries += 1
            else:
                self.sweep_recoveries += 1
            if tracer.enabled:
                for was_redo, lsn, other in emitted:
                    if was_redo:
                        tracer.emit(
                            ev.RECOVERY_REDO, system=system_id,
                            page=page_id, lsn=lsn, page_lsn_prev=other,
                        )
                    else:
                        tracer.emit(
                            ev.RECOVERY_SKIP, system=system_id,
                            page=page_id, lsn=lsn, page_lsn=other,
                        )
                tracer.emit(
                    ev.INSTANT_PAGE, system=system_id, page=page_id,
                    redone=redone, skipped=skipped, via=via,
                )
            if self.stats is not None:
                self.stats.incr(INSTANT_PAGES_RECOVERED)
                self.stats.incr(
                    INSTANT_DEMAND_RECOVERIES if via == "demand"
                    else INSTANT_SWEEP_RECOVERIES)
                if redone:
                    self.stats.incr(INSTANT_RECORDS_REDONE, redone)
                if skipped:
                    self.stats.incr(INSTANT_RECORDS_SKIPPED, skipped)
        if not self._chains:
            self._finish()
        return True

    # ------------------------------------------------------------------
    # background sweeper
    # ------------------------------------------------------------------
    def sweep(self, max_pages: int = 1) -> int:
        """One deterministic sweeper tick: recover up to ``max_pages``
        pending pages in ascending page-id order.  Returns how many
        pages this tick recovered."""
        if self.stats is not None:
            self.stats.incr(INSTANT_SWEEP_TICKS)
        recovered = 0
        for page_id in sorted(self._chains)[:max_pages]:
            if self.recover_page(page_id, via="sweep"):
                recovered += 1
        return recovered

    def drain(self) -> int:
        """Sweep until no page is pending; returns the total recovered."""
        total = 0
        while self._chains:
            total += self.sweep(max_pages=len(self._chains))
        return total

    # ------------------------------------------------------------------
    def _finish(self) -> None:
        if self._drained or not self._opened:
            return
        self._drained = True
        tracer = self.tracer
        if tracer.enabled:
            system_id = self.instance.system_id
            tracer.emit(
                ev.INSTANT_DONE, system=system_id,
                recovered=self.demand_recoveries + self.sweep_recoveries,
                demand=self.demand_recoveries,
                swept=self.sweep_recoveries,
            )
            tracer.emit(
                ev.RECOVERY_END, system=system_id,
                redone=self.summary.records_redone,
                skipped=self.summary.redo_skipped_by_lsn,
                losers=self.summary.loser_transactions,
                clrs=self.summary.clrs_written,
            )
        if self.on_drained is not None:
            self.on_drained(self)
