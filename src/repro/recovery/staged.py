"""Staged restart: new-transaction access before undo completes.

The paper cites [Moha91] for "a totally different application of the
[Commit_LSN] method ... to allow access to data to new transactions
even while recovery from a system failure is in progress."  The enabler
is ARIES' pass structure: after the **redo** pass has repeated history,
every page is current; the only uncommitted data left is the losers',
and that is protected by their retained locks.  So the system can open
for business between redo and undo.

:class:`StagedRestart` exposes exactly that seam.  ``run_redo()``
performs analysis + redo, flushes the reconstructed pages and lifts the
coherency fence — from this moment other systems (and new local
transactions) may access everything except records the losers still
lock.  ``run_undo()`` then rolls the losers back and releases their
locks.  ``restart_instance`` remains the one-shot equivalent.

Only the medium transfer scheme supports staged restart here: the fast
scheme's merged-log redo interacts with live-system buffers and is run
as one unit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.common.errors import ReproError
from repro.common.lsn import Lsn
from repro.obs import events as ev
from repro.recovery.aries import (
    RestartSummary,
    _redo_pass,
    _tracer_of,
    _undo_pass,
    analysis_pass,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sd.complex import SDComplex
    from repro.sd.instance import DbmsInstance


class StagedRestart:
    """Restart recovery with an open-for-access point after redo."""

    def __init__(self, sd_complex: "SDComplex",
                 instance: "DbmsInstance") -> None:
        if sd_complex.transfer_scheme != "medium":
            raise ReproError(
                "staged restart requires the medium transfer scheme"
            )
        if not instance.crashed:
            raise ReproError(
                f"system {instance.system_id} is not down"
            )
        self.complex = sd_complex
        self.instance = instance
        self.summary = RestartSummary()
        self._losers: Optional[Dict[int, Lsn]] = None
        self._open = False
        self._finished = False

    # ------------------------------------------------------------------
    def run_redo(self) -> RestartSummary:
        """Analysis + redo; then open the system for new transactions.

        After this returns, the failed system's pages are current on
        disk, the coherency fence is lifted, and only the losers'
        retained locks restrict access.
        """
        if self._losers is not None:
            raise ReproError("redo already ran")
        instance = self.instance
        instance.crashed = False
        log = instance.log
        tracer = _tracer_of(instance)
        log.recover_local_max()
        with tracer.span(ev.SPAN_ANALYSIS, system=instance.system_id):
            dpt, losers = analysis_pass(log, self.summary)
        self.summary.dirty_pages_at_crash = len(dpt)
        self.summary.loser_transactions = len(losers)
        with tracer.span(ev.SPAN_REDO, system=instance.system_id):
            _redo_pass(instance, dpt, self.summary)
        instance.pool.flush_all()
        self.complex.coherency.note_recovered(instance.system_id)
        self._losers = losers
        self._open = True
        return self.summary

    @property
    def open_for_access(self) -> bool:
        """True between redo completion and undo completion."""
        return self._open and not self._finished

    def loser_transactions(self) -> Dict[int, Lsn]:
        """The transactions still holding retained locks."""
        if self._losers is None:
            raise ReproError("run_redo() first")
        return dict(self._losers)

    # ------------------------------------------------------------------
    def run_undo(self) -> RestartSummary:
        """Roll back the losers and release their retained locks."""
        if self._losers is None:
            raise ReproError("run_redo() first")
        if self._finished:
            raise ReproError("undo already ran")
        instance = self.instance
        tracer = _tracer_of(instance)
        # A loser's page may have moved to another system during the
        # open window; the fixer fetches the current version (with the
        # crashed-owner reconstruction fallback).
        with tracer.span(ev.SPAN_UNDO, system=instance.system_id):
            _undo_pass(instance, self._losers, self.summary,
                       fix_page=self.complex.recovery_page_fixer(instance),
                       unfix_page=instance.pool.unfix)
        instance.log.force()
        instance.pool.flush_all()
        self.complex.release_system_locks(instance.system_id)
        self._finished = True
        return self.summary
