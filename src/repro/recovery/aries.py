"""ARIES restart recovery, adapted to the multi-system setting.

The three passes over the failed system's **local log only** — the
paper's Section 3.1 assumption (medium page-transfer scheme: a page on
disk holds dirty updates of at most one system) is precisely what makes
single-log redo correct, and this module is where that assumption pays
off.

Redo logic is untouched relative to single-system ARIES (Section 3.2.1,
"Restart Processing": redo iff ``record.LSN > page_LSN``) — that is the
paper's point: the USN scheme preserves the page-state comparison while
abandoning the address interpretation of LSNs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.config import NULL_LSN
from repro.common.lsn import Lsn
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.recovery.apply import apply_payload, apply_redo
from repro.txn.transaction import Transaction
from repro.wal.records import (
    CheckpointData,
    LogRecord,
    RecordKind,
    make_clr,
)

_COMMITTED = 1
_ACTIVE = 0

# Deliberate-breakage seam for the chaos campaign's self-test: with
# redo screening disabled, redo re-applies records already reflected in
# the page (double-apply), which the verifier/invariant checker must
# catch — proving the campaign can actually fail.  Never set outside
# ``repro.faults.campaign.sabotage_redo_screening``.
_SABOTAGE_DISABLE_REDO_SCREENING = False


@dataclass
class RestartSummary:
    """What restart recovery did (experiment E7 reports these)."""

    records_analyzed: int = 0
    records_redone: int = 0
    redo_skipped_by_lsn: int = 0
    loser_transactions: int = 0
    clrs_written: int = 0
    dirty_pages_at_crash: int = 0
    redo_scan_start: int = 0


def _tracer_of(instance) -> NullTracer:
    """The instance's tracer (instances are duck-typed here)."""
    return getattr(instance, "tracer", NULL_TRACER)


def restart_recovery(instance, fix_page=None, unfix_page=None,
                     redo_parallelism: int = 1) -> RestartSummary:
    """Recover one failed system from its own local log.

    ``instance`` is duck-typed: it needs ``log``, ``pool`` and
    ``system_id``.  On return, all committed updates are reflected in
    the buffer pool / disk, all loser transactions are undone with CLRs
    and closed with END records.

    ``redo_parallelism > 1`` runs the redo pass partitioned by page
    across a thread pool (:mod:`repro.cluster.redo`) — byte-identical
    final page images, since redo order only matters *within* a page.

    ``fix_page``/``unfix_page`` override how the **undo** pass reaches
    pages.  In the multi-system architectures they must go through the
    coherency layer: under record locking a loser's page may have
    migrated to another system after the loser's update (the page with
    its uncommitted bytes was legally written to disk and re-fetched),
    so the disk version the local pool would read can be stale —
    undoing against it would stamp a CLR LSN at or above another
    system's committed record and break per-page monotonicity.  Redo
    needs no override: the medium transfer scheme guarantees the disk
    version lacks only this system's own tail of updates.
    """
    log = instance.log
    tracer = _tracer_of(instance)
    system_id = instance.system_id
    summary = RestartSummary()
    with tracer.span(ev.SPAN_RECOVERY, system=system_id, mode="restart"):
        if tracer.enabled:
            tracer.emit(ev.RECOVERY_BEGIN, system=system_id,
                        mode="restart")
        # The Lamport clock must be re-seeded before any CLR is appended.
        log.recover_local_max()

        with tracer.span(ev.SPAN_ANALYSIS, system=system_id):
            dpt, losers = analysis_pass(log, summary)
        summary.dirty_pages_at_crash = len(dpt)
        summary.loser_transactions = len(losers)
        with tracer.span(ev.SPAN_REDO, system=system_id):
            _redo_pass(instance, dpt, summary, parallelism=redo_parallelism)
        with tracer.span(ev.SPAN_UNDO, system=system_id):
            _undo_pass(instance, losers, summary,
                       fix_page=fix_page, unfix_page=unfix_page)
        log.force()
        if tracer.enabled:
            tracer.emit(
                ev.RECOVERY_END, system=system_id,
                redone=summary.records_redone,
                skipped=summary.redo_skipped_by_lsn,
                losers=summary.loser_transactions,
                clrs=summary.clrs_written,
            )
    return summary


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
def analysis_pass(
    log, summary: RestartSummary
) -> Tuple[Dict[int, Tuple[Lsn, int]], Dict[int, Lsn]]:
    """Rebuild the dirty page table and find loser transactions.

    Returns ``(dpt, losers)`` where dpt maps page_id -> (RecLSN,
    RecAddr) and losers maps txn_id -> last_lsn.

    Public because it is the shared first act of every restart
    flavour: classic eager recovery here, staged restart
    (:mod:`repro.recovery.staged`) and instant restart
    (:mod:`repro.recovery.instant`) both run exactly this pass and
    then diverge in *when* redo work happens.
    """
    dpt: Dict[int, Tuple[Lsn, int]] = {}
    txn_table: Dict[int, Tuple[Lsn, int]] = {}  # txn -> (last_lsn, state)
    start = log.master_record_offset or 0
    for addr, record in log.scan(from_offset=start):
        summary.records_analyzed += 1
        if record.kind == RecordKind.END_CHECKPOINT:
            data = CheckpointData.from_bytes(record.extra)
            for page_id, entry in data.dirty_pages.items():
                dpt.setdefault(page_id, entry)
            for txn_id, entry in data.transactions.items():
                txn_table.setdefault(txn_id, entry)
            continue
        if record.txn_id:
            if record.kind == RecordKind.END:
                txn_table.pop(record.txn_id, None)
            elif record.kind == RecordKind.COMMIT:
                txn_table[record.txn_id] = (record.lsn, _COMMITTED)
            else:
                prior_state = txn_table.get(record.txn_id, (0, _ACTIVE))[1]
                txn_table[record.txn_id] = (record.lsn, prior_state)
        if record.is_page_oriented():
            dpt.setdefault(record.page_id, (record.lsn, addr.offset))
    losers = {
        txn_id: last_lsn
        for txn_id, (last_lsn, state) in txn_table.items()
        if state != _COMMITTED
    }
    return dpt, losers


# ----------------------------------------------------------------------
# redo — repeating history
# ----------------------------------------------------------------------
def _redo_pass(instance, dpt: Dict[int, Tuple[Lsn, int]],
               summary: RestartSummary, parallelism: int = 1) -> None:
    if not dpt:
        return
    log = instance.log
    pool = instance.pool
    redo_start = min(rec_addr for _, rec_addr in dpt.values())
    summary.redo_scan_start = redo_start
    if parallelism > 1:
        from repro.cluster.redo import collect_local_redo, replay_partitioned

        per_page = collect_local_redo(log, dpt, redo_start)
        replay_partitioned(
            instance, per_page, parallelism, summary,
            sabotage=_SABOTAGE_DISABLE_REDO_SCREENING,
        )
        return
    for addr, record in log.scan(from_offset=redo_start):
        if not record.is_page_oriented():
            continue
        entry = dpt.get(record.page_id)
        if entry is None or addr.offset < entry[1]:
            continue  # page written to disk after this update
        page = pool.fix(record.page_id)
        tracer = _tracer_of(instance)
        try:
            if _SABOTAGE_DISABLE_REDO_SCREENING or record.lsn > page.page_lsn:
                page_lsn_prev = page.page_lsn
                apply_redo(page, record)
                record_end = addr.offset + record.serialized_size()
                pool.note_update(record.page_id, record.lsn,
                                 addr.offset, record_end)
                summary.records_redone += 1
                if tracer.enabled:
                    tracer.emit(
                        ev.RECOVERY_REDO, system=instance.system_id,
                        page=record.page_id, lsn=int(record.lsn),
                        page_lsn_prev=int(page_lsn_prev),
                    )
            else:
                summary.redo_skipped_by_lsn += 1
                if tracer.enabled:
                    tracer.emit(
                        ev.RECOVERY_SKIP, system=instance.system_id,
                        page=record.page_id, lsn=int(record.lsn),
                        page_lsn=int(page.page_lsn),
                    )
        finally:
            pool.unfix(record.page_id)


# ----------------------------------------------------------------------
# fast-scheme restart: merged-log redo (the paper's Section 5 extension)
# ----------------------------------------------------------------------
def fast_restart_recovery(
    instance,
    all_logs,
    candidate_pages,
    skip_page_ids=(),
    fix_page=None,
    unfix_page=None,
    redo_parallelism: int = 1,
) -> RestartSummary:
    """Restart recovery under the fast page-transfer scheme.

    With memory-to-memory dirty-page transfer, a page lost with the
    failed system's buffers may carry updates from *several* systems
    that never reached disk, so redo must replay the **merged** local
    logs ([MoNa91]; the paper's Section 5: schemes that "rely on a
    realtime merged log").  Redo targets are ``candidate_pages`` (the
    failed system's dirty-page table plus its retained page ownership);
    ``skip_page_ids`` are pages whose current version is safe in a live
    system's buffer pool and therefore needs no reconstruction.

    Undo still uses only the failed system's own log — transactions are
    local — but applies through ``fix_page``/``unfix_page`` (usually
    coherency-mediated), because a loser's page may by now live in
    another system's pool.
    """
    log = instance.log
    tracer = _tracer_of(instance)
    system_id = instance.system_id
    summary = RestartSummary()
    with tracer.span(ev.SPAN_RECOVERY, system=system_id, mode="fast"):
        if tracer.enabled:
            tracer.emit(ev.RECOVERY_BEGIN, system=system_id, mode="fast")
        log.recover_local_max()
        with tracer.span(ev.SPAN_ANALYSIS, system=system_id):
            dpt, losers = analysis_pass(log, summary)
        summary.dirty_pages_at_crash = len(dpt)
        summary.loser_transactions = len(losers)

        targets = (set(dpt) | set(candidate_pages)) - set(skip_page_ids)
        with tracer.span(ev.SPAN_REDO, system=system_id):
            if targets and redo_parallelism > 1:
                from repro.cluster.redo import (
                    collect_merged_redo,
                    replay_partitioned,
                )

                per_page = collect_merged_redo(all_logs, targets)
                replay_partitioned(
                    instance, per_page, redo_parallelism, summary)
            elif targets:
                _merged_redo(instance, all_logs, targets, summary)
        with tracer.span(ev.SPAN_UNDO, system=system_id):
            _undo_pass(instance, losers, summary,
                       fix_page=fix_page, unfix_page=unfix_page)
        log.force()
        if tracer.enabled:
            tracer.emit(
                ev.RECOVERY_END, system=system_id,
                redone=summary.records_redone,
                skipped=summary.redo_skipped_by_lsn,
                losers=summary.loser_transactions,
                clrs=summary.clrs_written,
            )
    return summary


def _merged_redo(instance, all_logs, targets, summary: RestartSummary) -> None:
    """Serial merged-log redo (fast scheme, ``redo_parallelism == 1``)."""
    from repro.wal.merge import merge_local_logs

    log = instance.log
    pool = instance.pool
    tracer = _tracer_of(instance)
    for _, record in merge_local_logs(all_logs):
        if not record.is_page_oriented() or record.page_id not in targets:
            continue
        page = pool.fix(record.page_id)
        try:
            if record.lsn > page.page_lsn:
                page_lsn_prev = page.page_lsn
                apply_redo(page, record)
                # The covering records are in their writers' stable
                # logs; nothing to force locally before page writes.
                bcb = pool.bcb(record.page_id)
                if not bcb.dirty:
                    bcb.dirty = True
                    bcb.rec_lsn = record.lsn
                    bcb.rec_addr = log.end_offset
                summary.records_redone += 1
                if tracer.enabled:
                    tracer.emit(
                        ev.RECOVERY_REDO, system=instance.system_id,
                        page=record.page_id, lsn=int(record.lsn),
                        page_lsn_prev=int(page_lsn_prev),
                    )
            else:
                summary.redo_skipped_by_lsn += 1
                if tracer.enabled:
                    tracer.emit(
                        ev.RECOVERY_SKIP, system=instance.system_id,
                        page=record.page_id, lsn=int(record.lsn),
                        page_lsn=int(page.page_lsn),
                    )
        finally:
            pool.unfix(record.page_id)


# ----------------------------------------------------------------------
# undo — rollback of losers with CLRs
# ----------------------------------------------------------------------
def _undo_pass(instance, losers: Dict[int, Lsn],
               summary: RestartSummary,
               fix_page=None, unfix_page=None) -> None:
    if not losers:
        return
    log = instance.log
    pool = instance.pool
    # Index every record of a loser transaction by LSN (LSNs are unique
    # within one local log because the USN rule is strictly increasing).
    # The archive-truncation rule keeps every active transaction's
    # records on the active log, so the scan starts there.
    index: Dict[Lsn, Tuple[int, LogRecord]] = {}
    for addr, record in log.scan(from_offset=log.archived_offset):
        if record.txn_id in losers:
            index[record.lsn] = (addr.offset, record)
    next_undo: Dict[int, Lsn] = dict(losers)
    last_lsn: Dict[int, Lsn] = dict(losers)
    while next_undo:
        txn_id = max(next_undo, key=lambda t: next_undo[t])
        lsn = next_undo[txn_id]
        entry = index.get(lsn)
        if entry is None or lsn == NULL_LSN:
            _finish_loser(instance, txn_id, last_lsn[txn_id])
            del next_undo[txn_id]
            continue
        _, record = entry
        if record.kind == RecordKind.CLR:
            follow = record.undo_next_lsn
        elif record.is_undoable():
            clr_lsn = _compensate(instance, txn_id, record,
                                  last_lsn[txn_id],
                                  fix_page=fix_page, unfix_page=unfix_page)
            last_lsn[txn_id] = clr_lsn
            summary.clrs_written += 1
            follow = record.prev_lsn
        else:
            follow = record.prev_lsn
        if follow == NULL_LSN:
            _finish_loser(instance, txn_id, last_lsn[txn_id])
            del next_undo[txn_id]
        else:
            next_undo[txn_id] = follow


def _compensate(instance, txn_id: int, record: LogRecord,
                prev_lsn: Lsn, fix_page=None, unfix_page=None) -> Lsn:
    """Undo one update, logging the CLR first (so the rollback itself
    survives a crash-during-restart).

    ``fix_page``/``unfix_page`` default to the instance's own pool; the
    fast-transfer restart path passes coherency-mediated accessors
    because a loser's page may live in another system's buffer.
    """
    log = instance.log
    pool = instance.pool
    if fix_page is None:
        fix_page = pool.fix
    if unfix_page is None:
        unfix_page = pool.unfix
    page = fix_page(record.page_id)
    try:
        clr = make_clr(
            txn_id=txn_id, system_id=instance.system_id,
            page_id=record.page_id, slot=record.slot,
            redo=record.undo, undo_next_lsn=record.prev_lsn,
            prev_lsn=prev_lsn,
        )
        page_lsn_prev = page.page_lsn
        addr = log.append(clr, page_lsn=page_lsn_prev)
        apply_payload(page, record.slot, record.undo, clr.lsn)
        pool.note_update(record.page_id, clr.lsn, addr.offset,
                         log.end_offset)
        tracer = _tracer_of(instance)
        if tracer.enabled:
            tracer.emit(
                ev.RECOVERY_CLR, system=instance.system_id,
                page=record.page_id, txn=txn_id, lsn=int(clr.lsn),
                page_lsn_prev=int(page_lsn_prev),
            )
        return clr.lsn
    finally:
        unfix_page(record.page_id)


def _finish_loser(instance, txn_id: int, prev_lsn: Lsn) -> None:
    end = LogRecord(kind=RecordKind.END, txn_id=txn_id, prev_lsn=prev_lsn)
    instance.log.append(end)


# ----------------------------------------------------------------------
# normal-processing rollback entry point (re-exported convenience)
# ----------------------------------------------------------------------
def rollback_transaction(instance, txn: Transaction,
                         to_savepoint: Optional[str] = None) -> None:
    """Roll back a live transaction (delegates to the instance)."""
    instance.rollback(txn, to_savepoint=to_savepoint)
