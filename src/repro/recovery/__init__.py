"""Recovery: ARIES passes, checkpoints, media recovery, Commit_LSN.

The algorithms follow ARIES (analysis / redo / undo with CLRs and
repeating history) adapted to the paper's multi-system setting:

* restart redo of a failed SD instance uses **only that instance's
  local log** (legal under the medium page-transfer scheme assumption
  of Section 3.1);
* media recovery merges the local logs by LSN alone
  (:mod:`repro.wal.merge`) and redoes a page forward from its image
  copy (Section 3.2.2);
* the Commit_LSN optimization (Section 2 problem 4 / Section 3.5) is a
  cross-system minimum over oldest-active-transaction first LSNs.
"""

from repro.recovery.apply import apply_op, apply_redo, apply_undo, inverse_op
from repro.recovery.checkpoint import take_checkpoint
from repro.recovery.commit_lsn import CommitLsnService
from repro.recovery.media import recover_page_from_media
from repro.recovery.aries import restart_recovery, rollback_transaction

__all__ = [
    "CommitLsnService",
    "apply_op",
    "apply_redo",
    "apply_undo",
    "inverse_op",
    "recover_page_from_media",
    "restart_recovery",
    "rollback_transaction",
    "take_checkpoint",
]
