"""Applying logged operations to pages (redo and undo paths).

Operations are physiological (Section 1.4 lineage): they name a page
and slot, and the operation is replayed against the page's current
organisation.  The page_LSN test decides *whether* to apply; this
module only knows *how*.
"""

from __future__ import annotations

from repro.common.lsn import Lsn
from repro.storage.page import Page, PageType
from repro.storage.space_map import SpaceMap
from repro.wal.records import LogRecord, PageOp, decode_op, encode_op


def stamp_page_lsn(page: Page, lsn: Lsn) -> None:
    """Advance ``page``'s page_LSN to ``lsn`` (WAL bookkeeping).

    This is the *only* sanctioned way to move a page_LSN outside this
    module and the page class itself (lint rule R001): callers must
    have appended the covering log record first, passing the old
    page_LSN to the log manager so the USN rule can observe it.
    """
    page.page_lsn = lsn


def apply_op(page: Page, slot: int, op: PageOp, data: bytes) -> None:
    """Apply one operation to ``page`` (no LSN bookkeeping here)."""
    if op == PageOp.INSERT:
        page.insert_record_at(slot, data)
    elif op == PageOp.DELETE:
        page.delete_record(slot)
    elif op == PageOp.SET:
        page.update_record(slot, data)
    elif op == PageOp.FORMAT:
        page.format(page.page_id, PageType(data[0]))
    elif op == PageOp.SMP_SET:
        SpaceMap.apply_entry_update(page, data)
    elif op == PageOp.SMP_SET_RANGE:
        SpaceMap.apply_range_update(page, data)
    elif op == PageOp.NOOP:
        pass
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unknown operation {op}")


def apply_redo(page: Page, record: LogRecord) -> None:
    """Apply ``record``'s redo operation and stamp its LSN on the page.

    Caller has already decided the record must be applied (the
    ``record.lsn > page.page_lsn`` test, Section 3.2.1 "Restart
    Processing").
    """
    op, data = decode_op(record.redo)
    apply_op(page, record.slot, op, data)
    page.page_lsn = record.lsn


def apply_payload(page: Page, slot: int, payload: bytes, lsn: Lsn) -> None:
    """Apply an encoded operation to ``page`` and stamp ``lsn``.

    The shared tail of every logged-update path: normal-processing undo
    (apply the record's undo op, stamp the CLR's LSN) and CS/SD replay
    of already-encoded operations.  Using this helper instead of an
    inline ``decode_op``/``apply_op``/``page_lsn=`` triple keeps every
    page_LSN advance inside this module (lint rule R001).
    """
    op, data = decode_op(payload)
    apply_op(page, slot, op, data)
    page.page_lsn = lsn


def apply_undo(page: Page, record: LogRecord, clr_lsn: int) -> bytes:
    """Undo ``record``'s update on ``page``; returns the CLR redo payload.

    The CLR's redo payload is exactly the undo operation performed, so
    that repeating history after a crash-during-rollback replays it.
    The page is stamped with the CLR's LSN (``clr_lsn``), which the
    caller obtained from the log manager when writing the CLR.
    """
    op, data = decode_op(record.undo)
    apply_op(page, record.slot, op, data)
    page.page_lsn = clr_lsn
    return encode_op(op, data)


def inverse_op(record: LogRecord) -> bytes:
    """The undo payload of ``record`` (present for undoable kinds)."""
    if not record.undo:
        raise ValueError(f"record {record.lsn} has no undo information")
    return record.undo
