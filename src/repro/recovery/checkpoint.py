"""Fuzzy checkpoints.

A checkpoint brackets a BEGIN/END pair; the END record carries the
dirty page table (page -> RecLSN, RecAddr) and the transaction table.
The RecAddr entries are the paper's Section 3.2.2 requirement: because
page_LSN is no longer a log address, the *address* of the first
dirtying update must be tracked separately (in the BCB) and recorded at
checkpoint time so restart redo knows where to start scanning.

The "master record" (the stable pointer to the latest complete
checkpoint) is modelled by ``LogManager.master_record_offset``, updated
only after the checkpoint records are forced.
"""

from __future__ import annotations

from repro.common.lsn import LogAddress
from repro.wal.records import CheckpointData, LogRecord, RecordKind


def log_truncation_point(instance) -> int:
    """Lowest log offset restart recovery could still need.

    Everything earlier may be archived: it lies before the master
    checkpoint record, before every dirty page's RecAddr (redo never
    scans below the minimum RecAddr) and before every active
    transaction's first record (undo never follows a chain below it).
    """
    candidates = [instance.log.master_record_offset or 0]
    for rec_lsn, rec_addr in instance.pool.dirty_page_table().values():
        candidates.append(rec_addr)
    for txn in instance.txns.active():
        if txn.undo_entries:
            candidates.append(txn.undo_entries[0].offset)
    return min(candidates)


def archive_log(instance) -> int:
    """Checkpoint, then move the no-longer-needed log prefix to archive
    storage.  Returns the number of bytes archived.  The archived
    prefix remains available to media recovery (which reads "the
    tapes"); restart recovery never touches it."""
    take_checkpoint(instance)
    return instance.log.archive_up_to(log_truncation_point(instance))


def take_checkpoint(instance) -> LogAddress:
    """Take a fuzzy checkpoint on ``instance``; returns the address of
    the BEGIN_CHECKPOINT record (the new master record)."""
    log = instance.log
    begin = LogRecord(kind=RecordKind.BEGIN_CHECKPOINT)
    begin_addr = log.append(begin)
    data = CheckpointData(
        dirty_pages=dict(instance.pool.dirty_page_table()),
        transactions={
            txn.txn_id: (txn.last_lsn, 0)
            for txn in instance.txns.active()
            if txn.is_update_transaction()
        },
    )
    end = LogRecord(kind=RecordKind.END_CHECKPOINT, extra=data.to_bytes())
    log.append(end)
    log.force()
    log.master_record_offset = begin_addr.offset
    return begin_addr
